package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Objective is one latency service-level objective over a registered
// histogram: "Target of observations complete within Bound seconds".
// Bound must be one of the histogram's bucket bounds — fixed-bucket
// histograms can answer "how many observations were ≤ bound" exactly
// at bucket boundaries and not in between, so the SLO is defined on
// the ladder the metric already uses.
type Objective struct {
	// Name identifies the objective in reports, e.g. "read_lock".
	Name string
	// Metric is the histogram's instance key in a Snapshot, e.g.
	// `iw_server_rpc_seconds{rpc="ReadLock"}`.
	Metric string
	// Bound is the latency objective in the histogram's unit
	// (seconds for DurationBuckets); must equal a bucket bound.
	Bound float64
	// Target is the fraction of observations that must land within
	// Bound, e.g. 0.99.
	Target float64
}

// SLOTracker turns cumulative histograms into rolling-window
// error-budget arithmetic. Sample records the cumulative good/total
// counts per objective; Report differences the newest sample against
// window-old baselines to produce per-window bad ratios and burn
// rates. The tracker never touches the hot path: it reads registry
// snapshots at its own cadence.
type SLOTracker struct {
	reg        *Registry
	objectives []Objective
	short      time.Duration
	long       time.Duration

	mu      sync.Mutex
	samples []sloSample
}

// sloSample is the cumulative good/total counts per objective at one
// instant.
type sloSample struct {
	at    time.Time
	good  []uint64
	total []uint64
}

// Default SLO windows: the short window catches an active burn fast,
// the long window separates a blip from a budget problem — the
// standard multi-window burn-rate pattern.
const (
	DefaultSLOShortWindow = time.Minute
	DefaultSLOLongWindow  = 15 * time.Minute
)

// NewSLOTracker builds a tracker over reg for the given objectives.
// Non-positive windows take the defaults; short must not exceed long.
func NewSLOTracker(reg *Registry, objectives []Objective, short, long time.Duration) *SLOTracker {
	if short <= 0 {
		short = DefaultSLOShortWindow
	}
	if long <= 0 {
		long = DefaultSLOLongWindow
	}
	if short > long {
		short = long
	}
	return &SLOTracker{
		reg:        reg,
		objectives: append([]Objective(nil), objectives...),
		short:      short,
		long:       long,
	}
}

// Windows returns the tracker's short and long window durations.
func (t *SLOTracker) Windows() (short, long time.Duration) { return t.short, t.long }

// Objectives returns the tracked objectives.
func (t *SLOTracker) Objectives() []Objective {
	return append([]Objective(nil), t.objectives...)
}

// Sample records the current cumulative counts. Call it on a timer
// (a few seconds is plenty) or manually from tests; Report
// interpolates nothing, so window resolution is sampling resolution.
func (t *SLOTracker) Sample(now time.Time) {
	snap := t.reg.Snapshot()
	s := sloSample{
		at:    now,
		good:  make([]uint64, len(t.objectives)),
		total: make([]uint64, len(t.objectives)),
	}
	for i, o := range t.objectives {
		h, ok := snap.Histograms[o.Metric]
		if !ok {
			continue // metric not registered yet: counts stay zero
		}
		s.good[i], s.total[i] = goodTotal(h, o.Bound)
	}
	t.mu.Lock()
	t.samples = append(t.samples, s)
	// Prune anything older than the long window plus one extra
	// sample to serve as the window-start baseline.
	cut := now.Add(-t.long)
	drop := 0
	for drop < len(t.samples)-1 && t.samples[drop+1].at.Before(cut) {
		drop++
	}
	if drop > 0 {
		t.samples = append(t.samples[:0], t.samples[drop:]...)
	}
	t.mu.Unlock()
}

// goodTotal computes the cumulative count of observations at or
// under bound, and the total count, from one histogram snapshot.
func goodTotal(h HistSnapshot, bound float64) (good, total uint64) {
	i := sort.SearchFloat64s(h.Bounds, bound)
	cum := uint64(0)
	for j := 0; j <= i && j < len(h.Counts); j++ {
		if j == i && (i >= len(h.Bounds) || h.Bounds[i] != bound) {
			break // bound below bucket i's upper edge: bucket i is not all-good
		}
		cum += h.Counts[j]
	}
	return cum, h.Count
}

// SLOWindowReport is the error-budget arithmetic for one objective
// over one window.
type SLOWindowReport struct {
	// Window is the window duration in seconds.
	Window float64 `json:"window_seconds"`
	// Total is the number of observations in the window.
	Total uint64 `json:"total"`
	// Bad is the number of observations over the objective bound.
	Bad uint64 `json:"bad"`
	// BadRatio is Bad/Total (0 when Total is 0).
	BadRatio float64 `json:"bad_ratio"`
	// BurnRate is BadRatio divided by the objective's error budget
	// (1 − Target): 1.0 means the budget is being spent exactly at
	// the sustainable rate, above 1 it is burning.
	BurnRate float64 `json:"burn_rate"`
}

// SLOObjectiveReport is one objective's rolling-window status.
type SLOObjectiveReport struct {
	// Name is the objective's identifier, e.g. "read_lock".
	Name string `json:"name"`
	// Metric is the histogram instance key the objective reads.
	Metric string `json:"metric"`
	// Bound is the latency objective (histogram units; seconds for
	// the duration ladder).
	Bound float64 `json:"bound"`
	// Target is the required within-bound fraction.
	Target float64 `json:"target"`
	// Short is the short-window burn arithmetic.
	Short SLOWindowReport `json:"short"`
	// Long is the long-window burn arithmetic.
	Long SLOWindowReport `json:"long"`
	// Burning reports whether the short window is burning budget
	// faster than sustainable (BurnRate ≥ 1 with traffic present).
	Burning bool `json:"burning"`
}

// SLOReport is the full rolling-window SLO state, the body of
// /debug/slo.
type SLOReport struct {
	// At is when the report was computed.
	At time.Time `json:"at"`
	// Objectives carries one entry per tracked objective, in
	// registration order.
	Objectives []SLOObjectiveReport `json:"objectives"`
}

// Report computes the rolling-window report as of now, using the
// samples recorded so far. With fewer than two samples every window
// is empty (and not burning).
func (t *SLOTracker) Report(now time.Time) SLOReport {
	t.mu.Lock()
	samples := append([]sloSample(nil), t.samples...)
	t.mu.Unlock()
	rep := SLOReport{At: now, Objectives: make([]SLOObjectiveReport, len(t.objectives))}
	for i, o := range t.objectives {
		or := SLOObjectiveReport{Name: o.Name, Metric: o.Metric, Bound: o.Bound, Target: o.Target}
		or.Short = windowReport(samples, i, now, t.short, o.Target)
		or.Long = windowReport(samples, i, now, t.long, o.Target)
		or.Burning = or.Short.Total > 0 && or.Short.BurnRate >= 1
		rep.Objectives[i] = or
	}
	return rep
}

// windowReport differences the newest sample against the newest
// sample at or before the window start (falling back to the oldest
// sample when none is old enough).
func windowReport(samples []sloSample, obj int, now time.Time, window time.Duration, target float64) SLOWindowReport {
	wr := SLOWindowReport{Window: window.Seconds()}
	if len(samples) < 2 {
		return wr
	}
	latest := samples[len(samples)-1]
	start := now.Add(-window)
	base := samples[0]
	for _, s := range samples[1:] {
		if s.at.After(start) {
			break
		}
		base = s
	}
	// Counter resets (process restart reusing a tracker) clamp to
	// zero rather than underflowing.
	total := satSub(latest.total[obj], base.total[obj])
	good := satSub(latest.good[obj], base.good[obj])
	wr.Total = total
	if good > total {
		good = total
	}
	wr.Bad = total - good
	if total > 0 {
		wr.BadRatio = float64(wr.Bad) / float64(total)
	}
	budget := 1 - target
	if budget > 0 {
		wr.BurnRate = wr.BadRatio / budget
	} else if wr.Bad > 0 {
		wr.BurnRate = float64(wr.Bad) // zero budget: any badness burns hard
	}
	return wr
}

// satSub is saturating uint64 subtraction.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// String renders a one-line summary per objective, for logs.
func (r SLOReport) String() string {
	s := ""
	for _, o := range r.Objectives {
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("%s: short burn %.2f (%d/%d bad), long burn %.2f",
			o.Name, o.Short.BurnRate, o.Short.Bad, o.Short.Total, o.Long.BurnRate)
	}
	return s
}
