package obs

import (
	"testing"
	"time"
)

// sloHarness builds a registry with one latency histogram and a
// tracker with a single 64ms@99% objective over it.
func sloHarness(short, long time.Duration) (*Registry, *Histogram, *SLOTracker) {
	reg := NewRegistry()
	h := reg.Histogram("svc_seconds", "help", DurationBuckets)
	tr := NewSLOTracker(reg, []Objective{{
		Name:   "svc",
		Metric: "svc_seconds",
		Bound:  64e-3,
		Target: 0.99,
	}}, short, long)
	return reg, h, tr
}

func TestSLOGoodTotal(t *testing.T) {
	h := HistSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []uint64{10, 5, 3, 2},
		Count:  20,
	}
	cases := []struct {
		bound     float64
		good, tot uint64
	}{
		{1, 10, 20},
		{2, 15, 20},
		{4, 18, 20},
		{3, 15, 20},  // off-ladder bound: conservative, only fully-covered buckets count
		{8, 18, 20},  // above the ladder: everything but +Inf
		{0.5, 0, 20}, // below the first bucket: nothing provably good
	}
	for _, tc := range cases {
		good, tot := goodTotal(h, tc.bound)
		if good != tc.good || tot != tc.tot {
			t.Errorf("goodTotal(bound=%g) = (%d, %d), want (%d, %d)", tc.bound, good, tot, tc.good, tc.tot)
		}
	}
}

func TestSLOReportCleanTraffic(t *testing.T) {
	_, h, tr := sloHarness(time.Minute, 15*time.Minute)
	now := time.Now()
	tr.Sample(now.Add(-30 * time.Second))
	for i := 0; i < 100; i++ {
		h.Observe(1e-3) // well within 64ms
	}
	tr.Sample(now)
	rep := tr.Report(now)
	o := rep.Objectives[0]
	if o.Short.Total != 100 || o.Short.Bad != 0 {
		t.Fatalf("short window: %+v", o.Short)
	}
	if o.Short.BurnRate != 0 || o.Burning {
		t.Fatalf("clean traffic reported burning: %+v", o)
	}
}

func TestSLOReportBurn(t *testing.T) {
	_, h, tr := sloHarness(time.Minute, 15*time.Minute)
	now := time.Now()
	tr.Sample(now.Add(-30 * time.Second))
	for i := 0; i < 90; i++ {
		h.Observe(1e-3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // over the 64ms bound
	}
	tr.Sample(now)
	rep := tr.Report(now)
	o := rep.Objectives[0]
	if o.Short.Total != 100 || o.Short.Bad != 10 {
		t.Fatalf("short window: %+v", o.Short)
	}
	// 10% bad against a 1% budget = burn rate 10.
	if o.Short.BurnRate < 9.99 || o.Short.BurnRate > 10.01 {
		t.Fatalf("burn rate %g, want 10", o.Short.BurnRate)
	}
	if !o.Burning {
		t.Fatal("10x burn not flagged")
	}
}

func TestSLOWindowExcludesOldTraffic(t *testing.T) {
	// Bad traffic before the short window started must not burn the
	// short window, but still burns the long window.
	_, h, tr := sloHarness(time.Minute, 15*time.Minute)
	now := time.Now()
	tr.Sample(now.Add(-5 * time.Minute))
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all bad
	}
	tr.Sample(now.Add(-2 * time.Minute)) // the short-window baseline
	for i := 0; i < 50; i++ {
		h.Observe(1e-3) // recent traffic is clean
	}
	tr.Sample(now)
	rep := tr.Report(now)
	o := rep.Objectives[0]
	if o.Short.Bad != 0 || o.Short.Total != 50 {
		t.Fatalf("short window leaked old traffic: %+v", o.Short)
	}
	if o.Long.Bad != 100 || o.Long.Total != 150 {
		t.Fatalf("long window: %+v", o.Long)
	}
	if o.Burning {
		t.Fatal("recovered service still flagged burning")
	}
}

func TestSLORecovery(t *testing.T) {
	// The degraded→ok round trip the chaos test asserts end-to-end:
	// a burn flips Burning on, clean samples flip it back off.
	_, h, tr := sloHarness(10*time.Second, time.Minute)
	t0 := time.Now()
	tr.Sample(t0)
	for i := 0; i < 20; i++ {
		h.Observe(0.5)
	}
	tr.Sample(t0.Add(5 * time.Second))
	if o := tr.Report(t0.Add(5 * time.Second)).Objectives[0]; !o.Burning {
		t.Fatalf("burn not detected: %+v", o)
	}
	// 30s later the bad traffic has aged out of the 10s window and
	// only clean traffic arrived since.
	for i := 0; i < 20; i++ {
		h.Observe(1e-3)
	}
	tr.Sample(t0.Add(30 * time.Second))
	tr.Sample(t0.Add(35 * time.Second))
	if o := tr.Report(t0.Add(35 * time.Second)).Objectives[0]; o.Burning {
		t.Fatalf("burn did not clear: %+v", o)
	}
}

func TestSLOEmptyAndMissingMetric(t *testing.T) {
	reg := NewRegistry()
	tr := NewSLOTracker(reg, []Objective{{
		Name: "ghost", Metric: "not_registered", Bound: 1, Target: 0.99,
	}}, time.Minute, 15*time.Minute)
	now := time.Now()
	rep := tr.Report(now)
	if o := rep.Objectives[0]; o.Burning || o.Short.Total != 0 {
		t.Fatalf("no samples: %+v", o)
	}
	tr.Sample(now.Add(-time.Second))
	tr.Sample(now)
	rep = tr.Report(now)
	if o := rep.Objectives[0]; o.Burning || o.Short.Total != 0 || o.Short.BurnRate != 0 {
		t.Fatalf("missing metric: %+v", o)
	}
}

func TestSLOSamplePruning(t *testing.T) {
	_, h, tr := sloHarness(time.Second, 10*time.Second)
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		h.Observe(1e-3)
		tr.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	tr.mu.Lock()
	n := len(tr.samples)
	tr.mu.Unlock()
	// The ring keeps the long window plus one baseline sample, not
	// the whole history.
	if n > 13 {
		t.Fatalf("sample ring grew to %d entries for a 10s window at 1s cadence", n)
	}
}

func TestSLOWindowClamp(t *testing.T) {
	tr := NewSLOTracker(NewRegistry(), nil, time.Hour, time.Minute)
	short, long := tr.Windows()
	if short > long {
		t.Fatalf("short %v exceeds long %v", short, long)
	}
	tr = NewSLOTracker(NewRegistry(), nil, 0, 0)
	short, long = tr.Windows()
	if short != DefaultSLOShortWindow || long != DefaultSLOLongWindow {
		t.Fatalf("defaults not applied: %v, %v", short, long)
	}
}
