package astro

import (
	"math"
	"net"
	"strings"
	"testing"

	"interweave"
)

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(2, 2, 1); err == nil {
		t.Error("tiny grid accepted")
	}
	s, err := NewSim(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Density) != 256 {
		t.Errorf("grid length %d", len(s.Density))
	}
}

func TestSimMassApproxConserved(t *testing.T) {
	s, err := NewSim(32, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	mass := func() float64 {
		var m float64
		for _, v := range s.Density {
			m += v
		}
		return m
	}
	m0 := mass()
	for i := 0; i < 36; i++ { // below the injection step
		s.Step()
	}
	m1 := mass()
	// Semi-Lagrangian advection is slightly dissipative but mass
	// should stay within a few percent over 36 steps.
	if math.Abs(m1-m0)/m0 > 0.10 {
		t.Errorf("mass drifted from %.3f to %.3f", m0, m1)
	}
	if s.StepCount() != 36 {
		t.Errorf("StepCount = %d", s.StepCount())
	}
}

func TestSimDeterministic(t *testing.T) {
	a, _ := NewSim(16, 16, 3)
	b, _ := NewSim(16, 16, 3)
	for i := 0; i < 50; i++ {
		a.Step()
		b.Step()
	}
	for i := range a.Density {
		if a.Density[i] != b.Density[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestComputeStats(t *testing.T) {
	grid := []float64{0, 0, 0, 4} // 2x2, all mass at (1,1)
	st := ComputeStats(9, 2, 2, grid)
	if st.Step != 9 || st.Min != 0 || st.Max != 4 || st.Mean != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cx != 1 || st.Cy != 1 {
		t.Errorf("center of mass = %v,%v", st.Cx, st.Cy)
	}
}

func TestRender(t *testing.T) {
	s, err := NewSim(32, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(s.W, s.H, s.Density, 20, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 || len(lines[0]) != 20 {
		t.Errorf("render shape = %dx%d", len(lines), len(lines[0]))
	}
	if !strings.ContainsAny(out, ":-=+*#%@") {
		t.Error("render shows no density at all")
	}
}

func startServer(t *testing.T) string {
	t.Helper()
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

func TestPublishAndView(t *testing.T) {
	addr := startServer(t)
	seg := addr + "/astroflow"

	// Simulation engine on a 64-bit little-endian machine.
	cs, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileAlpha()})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	sim, err := NewSim(24, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(cs, seg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishFrame(); err != nil {
		t.Fatal(err)
	}

	// Visualization front end on a 32-bit big-endian machine.
	cv, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileSparc()})
	if err != nil {
		t.Fatal(err)
	}
	defer cv.Close()
	view, err := NewViewer(cv, seg, interweave.Full())
	if err != nil {
		t.Fatal(err)
	}
	st, grid, err := view.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 0 || len(grid) != 24*16 {
		t.Fatalf("frame = %+v, %d cells", st, len(grid))
	}
	want := ComputeStats(0, sim.W, sim.H, sim.Density)
	if st != want {
		t.Errorf("viewer stats %+v, sim stats %+v", st, want)
	}

	// Advance and republish: the viewer observes the new step.
	for i := 0; i < 5; i++ {
		sim.Step()
	}
	if err := pub.PublishFrame(); err != nil {
		t.Fatal(err)
	}
	st2, grid2, err := view.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Step != 5 {
		t.Errorf("step = %d, want 5", st2.Step)
	}
	for i := range grid2 {
		if grid2[i] != sim.Density[i] {
			t.Fatalf("cell %d: %v != %v", i, grid2[i], sim.Density[i])
		}
	}
}

func TestViewerErrors(t *testing.T) {
	addr := startServer(t)
	c, err := interweave.NewClient(interweave.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := NewViewer(nil, addr+"/x", interweave.Full()); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := NewPublisher(nil, addr+"/x", nil); err == nil {
		t.Error("nil publisher args accepted")
	}
	// A viewer on an empty segment gets a clean error.
	v, err := NewViewer(c, addr+"/empty", interweave.Full())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Frame(); err == nil {
		t.Error("frame from empty segment succeeded")
	}
}
