// Package astro reproduces the sharing pattern of the paper's
// Astroflow application (Section 4.5): a computational-fluid-dynamics
// simulation engine publishing its state into an InterWeave segment,
// and a visualization front end reading it on-line under temporal
// coherence, steering the update frequency simply by adjusting its
// coherence bound.
//
// The original simulator was a Fortran stellar-dynamics code running
// on an AlphaServer cluster under Cashmere; the substitute here is a
// small 2-D advection-diffusion solver — the physics is irrelevant to
// what the experiment exercises (a large numeric grid, whole-grid
// updates each step, a read-mostly remote client).
package astro

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"interweave"
)

// Sim is a 2-D advection-diffusion simulation of a density field —
// gas clouds drifting and spreading.
type Sim struct {
	W, H    int
	Density []float64
	// vx, vy is the bulk drift velocity in cells per step.
	vx, vy float64
	// diff is the diffusion coefficient.
	diff float64
	step int
	rng  *rand.Rand
}

// NewSim seeds a deterministic simulation with a few gaussian clumps
// ("protostars").
func NewSim(w, h int, seed int64) (*Sim, error) {
	if w < 4 || h < 4 {
		return nil, fmt.Errorf("astro: grid %dx%d too small", w, h)
	}
	s := &Sim{
		W:       w,
		H:       h,
		Density: make([]float64, w*h),
		vx:      0.35,
		vy:      0.15,
		diff:    0.08,
		rng:     rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < 3+s.rng.Intn(3); i++ {
		s.injectClump()
	}
	return s, nil
}

func (s *Sim) injectClump() {
	cx := float64(s.rng.Intn(s.W))
	cy := float64(s.rng.Intn(s.H))
	amp := 0.5 + s.rng.Float64()
	sigma := 1.5 + 2*s.rng.Float64()
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			s.Density[y*s.W+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
		}
	}
}

// Step advances the simulation one timestep: semi-Lagrangian
// advection, explicit diffusion, and occasional new clumps.
func (s *Sim) Step() {
	w, h := s.W, s.H
	next := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Advect: sample upstream with bilinear interpolation.
			sx := float64(x) - s.vx
			sy := float64(y) - s.vy
			v := s.sample(sx, sy)
			// Diffuse: blend with the 4-neighbourhood mean.
			n := s.at(x, y-1) + s.at(x, y+1) + s.at(x-1, y) + s.at(x+1, y)
			v = (1-s.diff)*v + s.diff*n/4
			next[y*w+x] = v
		}
	}
	s.Density = next
	s.step++
	if s.step%37 == 0 {
		s.injectClump() // a new star is born
	}
}

// at reads with toroidal wraparound.
func (s *Sim) at(x, y int) float64 {
	x = ((x % s.W) + s.W) % s.W
	y = ((y % s.H) + s.H) % s.H
	return s.Density[y*s.W+x]
}

func (s *Sim) sample(x, y float64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	fx, fy := x-x0, y-y0
	ix, iy := int(x0), int(y0)
	return (1-fx)*(1-fy)*s.at(ix, iy) +
		fx*(1-fy)*s.at(ix+1, iy) +
		(1-fx)*fy*s.at(ix, iy+1) +
		fx*fy*s.at(ix+1, iy+1)
}

// StepCount returns the number of completed steps.
func (s *Sim) StepCount() int { return s.step }

// Stats summarizes a frame for the visualization front end.
type Stats struct {
	Step     int32
	Min, Max float64
	Mean     float64
	// Cx, Cy is the density-weighted center of mass.
	Cx, Cy float64
}

// ComputeStats reduces a density grid.
func ComputeStats(step int32, w, h int, density []float64) Stats {
	st := Stats{Step: step, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sx, sy float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := density[y*w+x]
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
			sum += v
			sx += v * float64(x)
			sy += v * float64(y)
		}
	}
	if n := float64(w * h); n > 0 {
		st.Mean = sum / n
	}
	if sum > 0 {
		st.Cx, st.Cy = sx/sum, sy/sum
	}
	return st
}

// Render draws an ASCII contour map — the "visualization" of the
// example application.
func Render(w, h int, density []float64, cols, rows int) string {
	const shades = " .:-=+*#%@"
	st := ComputeStats(0, w, h, density)
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := c * w / cols
			y := r * h / rows
			v := (density[y*w+x] - st.Min) / span
			idx := int(v * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Shared segment layout: a header block and a grid block.

// HeaderType declares the frame header.
func HeaderType() (*interweave.Type, error) {
	return interweave.StructOf("frame_hdr",
		interweave.Field{Name: "step", Type: interweave.Int32()},
		interweave.Field{Name: "width", Type: interweave.Int32()},
		interweave.Field{Name: "height", Type: interweave.Int32()},
	)
}

// Publisher shares a simulation into a segment.
type Publisher struct {
	c    *interweave.Client
	h    *interweave.Segment
	sim  *Sim
	grid *interweave.Block
	hdr  interweave.Ref
}

// NewPublisher opens the segment and allocates the shared frame.
func NewPublisher(c *interweave.Client, segName string, sim *Sim) (*Publisher, error) {
	if c == nil || sim == nil {
		return nil, errors.New("astro: nil client or sim")
	}
	h, err := c.Open(segName)
	if err != nil {
		return nil, err
	}
	hdrT, err := HeaderType()
	if err != nil {
		return nil, err
	}
	p := &Publisher{c: c, h: h, sim: sim}
	if err := c.WLock(h); err != nil {
		return nil, err
	}
	defer func() { _ = c.WUnlock(h) }()
	hb, err := c.Alloc(h, hdrT, 1, "hdr")
	if err != nil {
		return nil, err
	}
	p.hdr, err = interweave.RefTo(c, hb)
	if err != nil {
		return nil, err
	}
	if err := setI32(p.hdr, "width", int32(sim.W)); err != nil {
		return nil, err
	}
	if err := setI32(p.hdr, "height", int32(sim.H)); err != nil {
		return nil, err
	}
	p.grid, err = c.Alloc(h, interweave.Float64(), sim.W*sim.H, "grid")
	if err != nil {
		return nil, err
	}
	return p, nil
}

func setI32(r interweave.Ref, field string, v int32) error {
	f, err := r.Field(field)
	if err != nil {
		return err
	}
	return f.SetI32(v)
}

// Segment returns the shared segment handle.
func (p *Publisher) Segment() *interweave.Segment { return p.h }

// PublishFrame writes the current simulation state into the segment
// (one write critical section per frame, as the modified Astroflow
// replaced its file dumps with segment writes).
func (p *Publisher) PublishFrame() error {
	if err := p.c.WLock(p.h); err != nil {
		return err
	}
	heap := p.c.Heap()
	var err error
	for i, v := range p.sim.Density {
		if err = heap.WriteF64(p.grid.Addr+interweave.Addr(8*i), v); err != nil {
			break
		}
	}
	if err == nil {
		err = setI32(p.hdr, "step", int32(p.sim.StepCount()))
	}
	if uerr := p.c.WUnlock(p.h); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

// Viewer is the visualization client.
type Viewer struct {
	c *interweave.Client
	h *interweave.Segment
}

// NewViewer opens the shared simulation under the given coherence
// policy (typically Temporal: the front end controls its own update
// frequency).
func NewViewer(c *interweave.Client, segName string, policy interweave.Policy) (*Viewer, error) {
	if c == nil {
		return nil, errors.New("astro: nil client")
	}
	h, err := c.Open(segName)
	if err != nil {
		return nil, err
	}
	if err := c.SetPolicy(h, policy); err != nil {
		return nil, err
	}
	return &Viewer{c: c, h: h}, nil
}

// Segment returns the viewed segment handle.
func (v *Viewer) Segment() *interweave.Segment { return v.h }

// Frame reads the current frame under a read lock.
func (v *Viewer) Frame() (Stats, []float64, error) {
	if err := v.c.RLock(v.h); err != nil {
		return Stats{}, nil, err
	}
	defer func() { _ = v.c.RUnlock(v.h) }()
	hb, ok := v.h.Mem().BlockByName("hdr")
	if !ok {
		return Stats{}, nil, errors.New("astro: no frame header in segment")
	}
	r, err := interweave.RefTo(v.c, hb)
	if err != nil {
		return Stats{}, nil, err
	}
	geti := func(name string) (int32, error) {
		f, err := r.Field(name)
		if err != nil {
			return 0, err
		}
		return f.I32()
	}
	step, err := geti("step")
	if err != nil {
		return Stats{}, nil, err
	}
	w, err := geti("width")
	if err != nil {
		return Stats{}, nil, err
	}
	h, err := geti("height")
	if err != nil {
		return Stats{}, nil, err
	}
	gb, ok := v.h.Mem().BlockByName("grid")
	if !ok {
		return Stats{}, nil, errors.New("astro: no grid in segment")
	}
	if int(w)*int(h) != gb.Count {
		return Stats{}, nil, fmt.Errorf("astro: header %dx%d does not match grid of %d", w, h, gb.Count)
	}
	grid := make([]float64, gb.Count)
	heap := v.c.Heap()
	for i := range grid {
		grid[i], err = heap.ReadF64(gb.Addr + interweave.Addr(8*i))
		if err != nil {
			return Stats{}, nil, err
		}
	}
	return ComputeStats(step, int(w), int(h), grid), grid, nil
}
