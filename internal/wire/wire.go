// Package wire defines InterWeave's machine- and language-independent
// wire format.
//
// The wire format carries not only data but also diffs: concise,
// run-length-encoded descriptions of only those data that have
// changed (paper Section 3.1). Offsets and lengths inside diffs are
// measured in primitive data units, never bytes, so any client can
// map them onto its own local format through its type descriptors. A
// block diff consists of the block's serial number, the diff's length
// in bytes, and a series of runs, each carrying the starting unit,
// the unit count, and the updated data in canonical form.
//
// Canonical value encoding is big-endian. Fixed-size units (chars,
// integers, floats) occupy their natural width; strings and pointers
// (MIPs) are variable length, encoded as a 32-bit byte count followed
// by the contents.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"interweave/internal/types"
)

// FixedWireSize returns the canonical encoded size of one unit of
// kind k, and ok=false for variable-length kinds (strings and
// pointers).
func FixedWireSize(k types.Kind) (int, bool) {
	switch k {
	case types.KindChar:
		return 1, true
	case types.KindInt16:
		return 2, true
	case types.KindInt32, types.KindFloat32:
		return 4, true
	case types.KindInt64, types.KindFloat64:
		return 8, true
	default:
		return 0, false
	}
}

// AppendU8 appends one byte.
func AppendU8(b []byte, v byte) []byte { return append(b, v) }

// AppendU16 appends a big-endian 16-bit value.
func AppendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

// AppendU32 appends a big-endian 32-bit value.
func AppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendU64 appends a big-endian 64-bit value.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendF64 appends a float64 as its IEEE-754 bits, big-endian.
func AppendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBytes appends a 32-bit length prefix followed by the bytes.
func AppendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendString appends a 32-bit length prefix followed by the string.
func AppendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// ErrTruncated reports wire input that ended before a complete value.
var ErrTruncated = errors.New("wire: truncated input")

// maxWireSlice bounds single length-prefixed items to keep corrupt or
// hostile input from provoking huge allocations.
const maxWireSlice = 1 << 28

// Reader decodes canonical values from a byte slice. It carries a
// sticky error: after any failure, subsequent reads return zero
// values and Err reports the first failure.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U16 reads a big-endian 16-bit value.
func (r *Reader) U16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian 32-bit value.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian 64-bit value.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// F64 reads a big-endian IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Take returns the next n bytes without copying.
func (r *Reader) Take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// Bytes reads a 32-bit length prefix and that many bytes (no copy).
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil || n > maxWireSlice {
		r.fail()
		return nil
	}
	return r.Take(int(n))
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Run is one run-length-encoded change inside a block diff: Count
// consecutive primitive units starting at unit Start, with the
// updated data in canonical wire form. The encoded form carries an
// explicit data byte length so that diffs remain self-delimiting even
// before type descriptors are consulted (the paper's format implies
// data lengths from the descriptors; the explicit length costs one
// word per run and removes a parsing order dependency).
type Run struct {
	Start uint32 // first modified unit, in primitive data units
	Count uint32 // number of modified units
	Data  []byte // canonical encoding of exactly Count units
}

// BlockDiff describes the changes to one block.
type BlockDiff struct {
	Serial uint32
	Runs   []Run
}

// DataLen returns the paper's "diff length measured in bytes": the
// total size of the run section.
func (d *BlockDiff) DataLen() int {
	n := 0
	for _, r := range d.Runs {
		n += 12 + len(r.Data)
	}
	return n
}

// DescDef registers a type descriptor under a segment-specific serial
// number. Bytes is the canonical descriptor encoding (types.Marshal).
type DescDef struct {
	Serial uint32
	Bytes  []byte
}

// NewBlock announces a block created in this version: its serial,
// its type descriptor serial, the number of elements of that type it
// holds, and its optional symbolic name.
type NewBlock struct {
	Serial     uint32
	DescSerial uint32
	Count      uint32
	Name       string
}

// SegmentDiff carries everything needed to move a cached copy of a
// segment from one version to another: new type descriptors, new and
// freed blocks, and per-block data runs. A full segment transmission
// is simply a diff from version 0 in which every block is new and one
// run covers all of its units.
type SegmentDiff struct {
	// Version is the segment version this diff produces.
	Version uint32
	Descs   []DescDef
	News    []NewBlock
	Freed   []uint32
	Blocks  []BlockDiff
}

// Empty reports whether the diff carries no changes at all.
func (d *SegmentDiff) Empty() bool {
	return len(d.Descs) == 0 && len(d.News) == 0 && len(d.Freed) == 0 && len(d.Blocks) == 0
}

// WireSize returns the encoded size in bytes, the quantity Figure 7
// reports as bandwidth.
func (d *SegmentDiff) WireSize() int { return len(d.Marshal(nil)) }

// DataBytes returns the total run payload across every block diff,
// without marshaling — the cheap per-release byte count the
// observability layer feeds its diff-vs-full-transfer ratios.
func (d *SegmentDiff) DataBytes() int {
	n := 0
	for i := range d.Blocks {
		n += d.Blocks[i].DataLen()
	}
	return n
}

// Units returns the total primitive units carried by the diff's runs,
// the numerator of the units-sent/units-full diffing-savings ratio.
func (d *SegmentDiff) Units() int {
	n := 0
	for i := range d.Blocks {
		for _, r := range d.Blocks[i].Runs {
			n += int(r.Count)
		}
	}
	return n
}

// Marshal appends the canonical encoding of the diff to buf.
func (d *SegmentDiff) Marshal(buf []byte) []byte {
	buf = AppendU32(buf, d.Version)
	buf = AppendU32(buf, uint32(len(d.Descs)))
	for _, dd := range d.Descs {
		buf = AppendU32(buf, dd.Serial)
		buf = AppendBytes(buf, dd.Bytes)
	}
	buf = AppendU32(buf, uint32(len(d.News)))
	for _, nb := range d.News {
		buf = AppendU32(buf, nb.Serial)
		buf = AppendU32(buf, nb.DescSerial)
		buf = AppendU32(buf, nb.Count)
		buf = AppendString(buf, nb.Name)
	}
	buf = AppendU32(buf, uint32(len(d.Freed)))
	for _, s := range d.Freed {
		buf = AppendU32(buf, s)
	}
	buf = AppendU32(buf, uint32(len(d.Blocks)))
	for _, bd := range d.Blocks {
		buf = AppendU32(buf, bd.Serial)
		buf = AppendU32(buf, uint32(bd.DataLen()))
		buf = AppendU32(buf, uint32(len(bd.Runs)))
		for _, r := range bd.Runs {
			buf = AppendU32(buf, r.Start)
			buf = AppendU32(buf, r.Count)
			buf = AppendBytes(buf, r.Data)
		}
	}
	return buf
}

// UnmarshalSegmentDiff decodes a diff produced by Marshal. The
// returned diff aliases b; callers must not modify b afterwards.
func UnmarshalSegmentDiff(b []byte) (*SegmentDiff, error) {
	r := NewReader(b)
	d, err := ReadSegmentDiff(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after segment diff", r.Remaining())
	}
	return d, nil
}

// ReadSegmentDiff decodes one segment diff from r.
func ReadSegmentDiff(r *Reader) (*SegmentDiff, error) {
	d := &SegmentDiff{Version: r.U32()}
	nd := r.U32()
	if r.Err() != nil || nd > 1<<20 {
		return nil, fmt.Errorf("wire: bad descriptor count: %w", ErrTruncated)
	}
	d.Descs = make([]DescDef, nd)
	for i := range d.Descs {
		d.Descs[i] = DescDef{Serial: r.U32(), Bytes: r.Bytes()}
	}
	nn := r.U32()
	if r.Err() != nil || nn > 1<<24 {
		return nil, fmt.Errorf("wire: bad new-block count: %w", ErrTruncated)
	}
	d.News = make([]NewBlock, nn)
	for i := range d.News {
		d.News[i] = NewBlock{Serial: r.U32(), DescSerial: r.U32(), Count: r.U32(), Name: r.Str()}
	}
	nf := r.U32()
	if r.Err() != nil || nf > 1<<24 {
		return nil, fmt.Errorf("wire: bad freed-block count: %w", ErrTruncated)
	}
	d.Freed = make([]uint32, nf)
	for i := range d.Freed {
		d.Freed[i] = r.U32()
	}
	nb := r.U32()
	if r.Err() != nil || nb > 1<<24 {
		return nil, fmt.Errorf("wire: bad block-diff count: %w", ErrTruncated)
	}
	d.Blocks = make([]BlockDiff, nb)
	for i := range d.Blocks {
		bd := BlockDiff{Serial: r.U32()}
		declared := r.U32()
		nr := r.U32()
		if r.Err() != nil || nr > 1<<24 {
			return nil, fmt.Errorf("wire: bad run count: %w", ErrTruncated)
		}
		bd.Runs = make([]Run, nr)
		for j := range bd.Runs {
			bd.Runs[j] = Run{Start: r.U32(), Count: r.U32(), Data: r.Bytes()}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if got := bd.DataLen(); got != int(declared) {
			return nil, fmt.Errorf("wire: block %d diff length %d, declared %d", bd.Serial, got, declared)
		}
		d.Blocks[i] = bd
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
