package wire

import (
	"encoding/hex"
	"testing"
)

// Golden encodings freeze the wire format: these bytes are the
// protocol. If an edit changes them, existing servers, clients, and
// checkpoints stop interoperating — the change must be deliberate and
// versioned, not incidental.

func TestGoldenSegmentDiff(t *testing.T) {
	d := &SegmentDiff{
		Version: 0x0102,
		Descs:   []DescDef{{Serial: 3, Bytes: []byte{0xAA, 0xBB}}},
		News:    []NewBlock{{Serial: 4, DescSerial: 3, Count: 2, Name: "hd"}},
		Freed:   []uint32{9},
		Blocks: []BlockDiff{{Serial: 4, Runs: []Run{
			{Start: 1, Count: 2, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
		}}},
	}
	const want = "00000102" + // version
		"00000001" + // desc count
		"00000003" + "00000002" + "aabb" + // desc 3, 2 bytes
		"00000001" + // new-block count
		"00000004" + "00000003" + "00000002" + "00000002" + "6864" + // serial, desc, count, name "hd"
		"00000001" + "00000009" + // freed count, serial 9
		"00000001" + // block-diff count
		"00000004" + // block serial
		"00000010" + // declared run-section length: 12 + 4 data
		"00000001" + // run count
		"00000001" + "00000002" + // start, count
		"00000004" + "deadbeef" // data length, data
	got := hex.EncodeToString(d.Marshal(nil))
	if got != want {
		t.Fatalf("segment diff encoding changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenScalars(t *testing.T) {
	var b []byte
	b = AppendU16(b, 0x1234)
	b = AppendU32(b, 0x56789ABC)
	b = AppendU64(b, 0x0102030405060708)
	b = AppendF64(b, 1.0)
	b = AppendString(b, "iw")
	const want = "1234" + "56789abc" + "0102030405060708" +
		"3ff0000000000000" + "00000002" + "6977"
	if got := hex.EncodeToString(b); got != want {
		t.Fatalf("scalar encodings changed:\n got %s\nwant %s", got, want)
	}
}
