package wire

import (
	"bytes"
	"testing"
)

// fuzzSeedDiffs are valid encodings covering every section of the
// diff format, so the fuzzer starts from structurally interesting
// inputs rather than pure noise.
func fuzzSeedDiffs() []*SegmentDiff {
	return []*SegmentDiff{
		{},
		{Version: 1},
		{
			Version: 7,
			Descs:   []DescDef{{Serial: 1, Bytes: []byte{1, 2, 3}}},
			News:    []NewBlock{{Serial: 1, DescSerial: 1, Count: 4, Name: "blk"}},
			Freed:   []uint32{9, 12},
			Blocks: []BlockDiff{{Serial: 1, Runs: []Run{
				{Start: 0, Count: 1, Data: []byte{0, 0, 0, 1}},
				{Start: 3, Count: 1, Data: []byte{0, 0, 0, 2}},
			}}},
		},
		{
			Version: 2,
			News:    []NewBlock{{Serial: 5, DescSerial: 2, Count: 1, Name: ""}},
			Blocks: []BlockDiff{{Serial: 5, Runs: []Run{
				{Start: 0, Count: 2, Data: []byte{0, 3, 'h', 'i', 0, 0}},
			}}},
		},
	}
}

// FuzzWireDecode feeds arbitrary bytes to the segment-diff decoder: a
// malformed diff arriving off a faulty link must produce an error,
// never a panic or a huge allocation. Valid inputs must round-trip.
func FuzzWireDecode(f *testing.F) {
	for _, d := range fuzzSeedDiffs() {
		f.Add(d.Marshal(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := UnmarshalSegmentDiff(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same bytes
		// — the decoder may not invent state it cannot represent.
		out := d.Marshal(nil)
		d2, err := UnmarshalSegmentDiff(out)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !bytes.Equal(out, d2.Marshal(nil)) {
			t.Fatalf("unstable encoding:\n  first %x\n  second %x", out, d2.Marshal(nil))
		}
	})
}

// TestFuzzSeedsRoundtrip keeps the seed corpus honest in normal test
// runs (the fuzz engine only checks them under -fuzz).
func TestFuzzSeedsRoundtrip(t *testing.T) {
	for i, d := range fuzzSeedDiffs() {
		enc := d.Marshal(nil)
		got, err := UnmarshalSegmentDiff(enc)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if !bytes.Equal(enc, got.Marshal(nil)) {
			t.Errorf("seed %d: encoding not stable", i)
		}
	}
}
