package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"interweave/internal/types"
)

func TestFixedWireSize(t *testing.T) {
	tests := []struct {
		k    types.Kind
		size int
		ok   bool
	}{
		{types.KindChar, 1, true},
		{types.KindInt16, 2, true},
		{types.KindInt32, 4, true},
		{types.KindInt64, 8, true},
		{types.KindFloat32, 4, true},
		{types.KindFloat64, 8, true},
		{types.KindString, 0, false},
		{types.KindPointer, 0, false},
		{types.KindStruct, 0, false},
	}
	for _, tt := range tests {
		size, ok := FixedWireSize(tt.k)
		if size != tt.size || ok != tt.ok {
			t.Errorf("FixedWireSize(%v) = %d,%v; want %d,%v", tt.k, size, ok, tt.size, tt.ok)
		}
	}
}

func TestScalarRoundtrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendU16(b, 0xCDEF)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 0x0123456789ABCDEF)
	b = AppendF64(b, -math.Pi)
	b = AppendString(b, "interweave")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "")

	r := NewReader(b)
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xCDEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.F64(); v != -math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := r.Str(); v != "interweave" {
		t.Errorf("Str = %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := r.Str(); v != "" {
		t.Errorf("empty Str = %q", v)
	}
	if r.Err() != nil {
		t.Errorf("Err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32() // fails: only 2 bytes
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	if v := r.U8(); v != 0 {
		t.Errorf("read after error returned %d", v)
	}
	if r.Err() != ErrTruncated {
		t.Errorf("Err = %v, want ErrTruncated", r.Err())
	}
}

func TestReaderBigEndian(t *testing.T) {
	b := AppendU32(nil, 1)
	want := []byte{0, 0, 0, 1}
	if !bytes.Equal(b, want) {
		t.Errorf("AppendU32(1) = %v, want %v (canonical form is big-endian)", b, want)
	}
}

func TestTakeBounds(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Take(2); !bytes.Equal(got, []byte{1, 2}) {
		t.Errorf("Take(2) = %v", got)
	}
	if got := r.Take(5); got != nil || r.Err() == nil {
		t.Error("Take past end should fail")
	}
	r2 := NewReader([]byte{1})
	if got := r2.Take(-1); got != nil || r2.Err() == nil {
		t.Error("Take(-1) should fail")
	}
}

func sampleDiff() *SegmentDiff {
	return &SegmentDiff{
		Version: 7,
		Descs: []DescDef{
			{Serial: 1, Bytes: []byte{9, 9, 9}},
		},
		News: []NewBlock{
			{Serial: 3, DescSerial: 1, Count: 10, Name: "head"},
			{Serial: 4, DescSerial: 1, Count: 1, Name: ""},
		},
		Freed: []uint32{2},
		Blocks: []BlockDiff{
			{Serial: 3, Runs: []Run{
				{Start: 0, Count: 2, Data: []byte{0, 0, 0, 1, 0, 0, 0, 2}},
				{Start: 8, Count: 1, Data: []byte{0, 0, 0, 9}},
			}},
			{Serial: 4, Runs: []Run{{Start: 0, Count: 1, Data: []byte{5}}}},
		},
	}
}

func TestSegmentDiffRoundtrip(t *testing.T) {
	d := sampleDiff()
	enc := d.Marshal(nil)
	got, err := UnmarshalSegmentDiff(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Version != d.Version {
		t.Errorf("Version = %d", got.Version)
	}
	if len(got.Descs) != 1 || got.Descs[0].Serial != 1 || !bytes.Equal(got.Descs[0].Bytes, []byte{9, 9, 9}) {
		t.Errorf("Descs = %+v", got.Descs)
	}
	if len(got.News) != 2 || got.News[0].Name != "head" || got.News[1].Count != 1 {
		t.Errorf("News = %+v", got.News)
	}
	if len(got.Freed) != 1 || got.Freed[0] != 2 {
		t.Errorf("Freed = %+v", got.Freed)
	}
	if len(got.Blocks) != 2 {
		t.Fatalf("Blocks = %d", len(got.Blocks))
	}
	b0 := got.Blocks[0]
	if b0.Serial != 3 || len(b0.Runs) != 2 || b0.Runs[1].Start != 8 ||
		!bytes.Equal(b0.Runs[0].Data, []byte{0, 0, 0, 1, 0, 0, 0, 2}) {
		t.Errorf("Blocks[0] = %+v", b0)
	}
}

func TestSegmentDiffEmpty(t *testing.T) {
	d := &SegmentDiff{Version: 1}
	if !d.Empty() {
		t.Error("empty diff not Empty")
	}
	if sampleDiff().Empty() {
		t.Error("sample diff reported Empty")
	}
	got, err := UnmarshalSegmentDiff(d.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() || got.Version != 1 {
		t.Errorf("roundtripped empty diff = %+v", got)
	}
}

func TestSegmentDiffWireSizeMatchesEncoding(t *testing.T) {
	d := sampleDiff()
	if d.WireSize() != len(d.Marshal(nil)) {
		t.Error("WireSize disagrees with Marshal length")
	}
}

func TestUnmarshalSegmentDiffErrors(t *testing.T) {
	good := sampleDiff().Marshal(nil)
	for cut := 1; cut < len(good); cut += 7 {
		if _, err := UnmarshalSegmentDiff(good[:cut]); err == nil {
			t.Errorf("truncation at %d succeeded", cut)
		}
	}
	if _, err := UnmarshalSegmentDiff(append(append([]byte{}, good...), 1)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Corrupt the final run's data length prefix (the 4 bytes just
	// before its 1 data byte): the inflated length must be rejected.
	bad := append([]byte{}, good...)
	bad[len(bad)-2] ^= 0xFF
	if _, err := UnmarshalSegmentDiff(bad); err == nil {
		t.Error("corrupted run length accepted")
	}
}

func TestDataLen(t *testing.T) {
	bd := BlockDiff{Runs: []Run{
		{Start: 0, Count: 1, Data: make([]byte, 4)},
		{Start: 5, Count: 2, Data: make([]byte, 16)},
	}}
	if got := bd.DataLen(); got != 12+4+12+16 {
		t.Errorf("DataLen = %d, want %d", got, 12+4+12+16)
	}
}

// TestQuickDiffRoundtrip fuzzes structurally valid diffs through the
// encoder and decoder.
func TestQuickDiffRoundtrip(t *testing.T) {
	fn := func(version uint32, serials []uint32, runBytes [][]byte) bool {
		d := &SegmentDiff{Version: version}
		for i, s := range serials {
			var runs []Run
			if i < len(runBytes) {
				runs = append(runs, Run{Start: uint32(i), Count: uint32(len(runBytes[i])), Data: runBytes[i]})
			} else {
				runs = append(runs, Run{Start: 0, Count: 0, Data: nil})
			}
			d.Blocks = append(d.Blocks, BlockDiff{Serial: s, Runs: runs})
		}
		got, err := UnmarshalSegmentDiff(d.Marshal(nil))
		if err != nil {
			return false
		}
		if got.Version != version || len(got.Blocks) != len(d.Blocks) {
			return false
		}
		for i := range got.Blocks {
			if got.Blocks[i].Serial != d.Blocks[i].Serial {
				return false
			}
			if !bytes.Equal(got.Blocks[i].Runs[0].Data, d.Blocks[i].Runs[0].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
