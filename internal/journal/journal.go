// Package journal implements a per-segment append-only diff journal:
// the log-structured persistence layer behind the server's
// Options.JournalDir mode.
//
// Each segment owns two files in the journal directory, both named by
// the hex-encoded segment name: a checkpoint base (".iwseg", sealed
// by the server's checkpoint codec and treated as opaque bytes here)
// and a log (".iwlog") of records appended since that base was
// written. Every record is one persisted Replicate frame — the same
// message the replication stream carries, reusing the protocol
// encoding — wrapped in a length prefix and a CRC-32 seal:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// where payload is protocol.MarshalMessage of the Replicate. Recovery
// is base + replay: decode the base, then re-apply the log's diffs in
// order. Replay stops cleanly at the first torn or CRC-failing
// record — everything before it is intact by CRC, everything from it
// on is discarded and the file truncated, so a crash mid-append can
// only lose the unacknowledged tail write.
//
// The in-memory window mirrors the log's records between compactions.
// It serves two readers: startup replay, and the cluster catch-up
// path, which replays the journaled frames to a rejoining replica
// instead of collecting a full diff. Compaction folds the window into
// a fresh base and truncates the log; the base is renamed into place
// before the log shrinks, so a crash between the two steps leaves a
// log whose stale records replay as no-ops (their versions are
// already covered by the base).
package journal

import (
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"interweave/internal/protocol"
	"interweave/internal/wire"
)

// LogSuffix is the filename suffix of per-segment journal logs; the
// rest of the name is the hex-encoded segment name.
const LogSuffix = ".iwlog"

// BaseSuffix is the filename suffix of per-segment checkpoint bases a
// journal compacts into. It matches the server's checkpoint files:
// the base is written by the same codec.
const BaseSuffix = ".iwseg"

// recordHeader is the fixed prefix of every record: payload length
// and payload CRC.
const recordHeader = 8

// maxRecord bounds a single record's payload, mirroring the protocol
// frame limit; a larger length field can only be corruption.
const maxRecord = 1 << 30

// Options configures a Store.
type Options struct {
	// CompactBytes is the log size at which NeedsCompaction reports
	// true for a segment. Zero or negative never asks for compaction
	// (the caller may still compact explicitly).
	CompactBytes int64
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Store manages the journals of every segment in one directory.
type Store struct {
	dir  string
	opts Options

	mu   sync.Mutex
	logs map[string]*Log
}

// Open opens (creating if needed) the journal directory and scans it:
// every log found is parsed up to its first torn or CRC-failing
// record and truncated there, so the store's windows reflect exactly
// the replayable on-disk state.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, logs: make(map[string]*Log)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var hexName string
		switch {
		case strings.HasSuffix(name, LogSuffix):
			hexName = strings.TrimSuffix(name, LogSuffix)
		case strings.HasSuffix(name, BaseSuffix):
			hexName = strings.TrimSuffix(name, BaseSuffix)
		default:
			continue
		}
		raw, err := hex.DecodeString(hexName)
		if err != nil {
			s.logf("journal: skipping unrelated entry %s", name)
			continue
		}
		if _, err := s.open(string(raw)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Segments lists the segment names with journal state on disk,
// sorted.
func (s *Store) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.logs))
	for name := range s.logs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Segment returns the named segment's log, creating it (and its file,
// lazily on first append) when absent.
func (s *Store) Segment(name string) (*Log, error) {
	return s.open(name)
}

func (s *Store) open(name string) (*Log, error) {
	s.mu.Lock()
	if l, ok := s.logs[name]; ok {
		s.mu.Unlock()
		return l, nil
	}
	s.mu.Unlock()
	stem := filepath.Join(s.dir, hex.EncodeToString([]byte(name)))
	l := &Log{
		seg:      name,
		path:     stem + LogSuffix,
		basePath: stem + BaseSuffix,
		compact:  s.opts.CompactBytes,
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.logs[name]; ok {
		// Another goroutine opened the same segment first; keep its
		// log (one open file handle per segment) and drop ours.
		if l.f != nil {
			_ = l.f.Close()
		}
		return prior, nil
	}
	s.logs[name] = l
	return l, nil
}

// Close closes every open log file. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, l := range s.logs {
		l.mu.Lock()
		if l.f != nil {
			if err := l.f.Close(); err != nil && first == nil {
				first = err
			}
			l.f = nil
		}
		l.closed = true
		l.mu.Unlock()
	}
	return first
}

// Log is one segment's journal: its append handle, its in-memory
// window (the decoded records currently in the log file), and the
// path of its checkpoint base.
type Log struct {
	seg      string
	path     string
	basePath string
	compact  int64

	mu     sync.Mutex
	f      *os.File // nil until the first append (or when nothing to load)
	size   int64
	window []*protocol.Replicate
	torn   bool // the on-disk log ended in a torn/corrupt record at load
	closed bool
}

// load parses the on-disk log (if any) into the window, truncating a
// torn tail so the file ends on a sealed record boundary.
func (l *Log) load() error {
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: reading %s: %w", l.path, err)
	}
	recs, valid, torn := ScanRecords(data)
	l.window = recs
	l.size = int64(valid)
	l.torn = torn
	if torn {
		if err := os.Truncate(l.path, int64(valid)); err != nil {
			return fmt.Errorf("journal: truncating torn tail of %s: %w", l.path, err)
		}
	}
	return nil
}

// ScanRecords parses a journal image into its decoded records,
// stopping at the first torn or corrupt record: an incomplete header,
// an implausible or overrunning length, a CRC mismatch, or a payload
// that is not a well-formed Replicate frame. It returns the records
// of the valid prefix, the prefix's byte length, and whether anything
// (a torn record or trailing garbage) was dropped after it. It never
// fails: corruption only shortens the prefix.
func ScanRecords(data []byte) (recs []*protocol.Replicate, validPrefix int, torn bool) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, false
		}
		if len(rest) < recordHeader {
			return recs, off, true
		}
		r := wire.NewReader(rest[:recordHeader])
		n := int(r.U32())
		sum := r.U32()
		if n <= 0 || n > maxRecord || n > len(rest)-recordHeader {
			return recs, off, true
		}
		payload := rest[recordHeader : recordHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, true
		}
		m, err := protocol.UnmarshalMessage(payload)
		if err != nil {
			return recs, off, true
		}
		rep, ok := m.(*protocol.Replicate)
		if !ok {
			return recs, off, true
		}
		recs = append(recs, rep)
		off += recordHeader + n
	}
}

// appendRecord seals one marshaled payload into record framing.
func appendRecord(buf, payload []byte) []byte {
	buf = wire.AppendU32(buf, uint32(len(payload)))
	buf = wire.AppendU32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// DroppedTail reports whether the on-disk log ended in a torn or
// corrupt record when it was loaded (the tail was truncated away).
func (l *Log) DroppedTail() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// Size returns the log file's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// NeedsCompaction reports whether the log has outgrown the store's
// compaction threshold.
func (l *Log) NeedsCompaction() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compact > 0 && l.size > l.compact
}

// Append seals m into one record and appends it to the log. The
// record is in the OS page cache when Append returns (a process kill
// cannot lose it; surviving a machine crash would additionally need
// an fsync, which this implementation trades away for append
// latency — the torn-tail rule keeps either outcome consistent).
func (l *Log) Append(m *protocol.Replicate) error {
	payload := protocol.MarshalMessage(make([]byte, 0, 256), m)
	rec := appendRecord(make([]byte, 0, recordHeader+len(payload)), payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: %s: store closed", l.seg)
	}
	if l.f == nil {
		f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: opening %s: %w", l.path, err)
		}
		l.f = f
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("journal: appending to %s: %w", l.path, err)
	}
	l.size += int64(len(rec))
	l.window = append(l.window, m)
	return nil
}

// Window returns the journaled records with Version > sinceVer, in
// append order — the frames a catch-up or replay needs on top of a
// copy at sinceVer. The returned messages are shallow copies: callers
// may re-stamp routing fields (Epoch, From) without disturbing the
// journal's own view.
func (l *Log) Window(sinceVer uint32) []*protocol.Replicate {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*protocol.Replicate
	for _, rec := range l.window {
		if rec.Version > sinceVer {
			cp := *rec
			out = append(out, &cp)
		}
	}
	return out
}

// Base returns the segment's checkpoint base bytes, or ok=false when
// no base has been written yet.
func (l *Log) Base() (data []byte, ok bool, err error) {
	data, err = os.ReadFile(l.basePath)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("journal: reading base %s: %w", l.basePath, err)
	}
	return data, true, nil
}

// Compact installs sealedBase (the caller's checkpoint-codec encoding
// of the segment at baseVersion) as the new base and rewrites the log
// to hold only records past baseVersion — normally none, shrinking it
// to empty. Both installs are atomic renames, base first: a crash
// between them leaves records the base already covers, which replay
// skips by version.
func (l *Log) Compact(baseVersion uint32, sealedBase []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: %s: store closed", l.seg)
	}
	if err := writeAtomic(l.basePath, sealedBase); err != nil {
		return err
	}
	var kept []*protocol.Replicate
	var buf []byte
	for _, rec := range l.window {
		if rec.Version > baseVersion {
			kept = append(kept, rec)
			buf = appendRecord(buf, protocol.MarshalMessage(make([]byte, 0, 256), rec))
		}
	}
	if err := l.swapLog(buf); err != nil {
		return err
	}
	l.window = kept
	return nil
}

// Reset discards the segment's journal entirely — base and log — the
// counterpart of a cluster demotion resetting the in-memory copy.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := os.Remove(l.basePath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: removing base %s: %w", l.basePath, err)
	}
	if err := l.swapLog(nil); err != nil {
		return err
	}
	l.window = nil
	return nil
}

// swapLog atomically replaces the log's contents, reopening the
// append handle on the new file. Called with l.mu held.
func (l *Log) swapLog(content []byte) error {
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
	if len(content) == 0 {
		if err := os.Remove(l.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("journal: removing %s: %w", l.path, err)
		}
		l.size = 0
		return nil
	}
	if err := writeAtomic(l.path, content); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening %s: %w", l.path, err)
	}
	l.f = f
	l.size = int64(len(content))
	return nil
}

// writeAtomic publishes data at path via a temp file and rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("journal: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: publishing %s: %w", path, err)
	}
	return nil
}
