package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"interweave/internal/protocol"
	"interweave/internal/wire"
)

// rec builds a representative journal record: a Replicate frame
// advancing seg from prev to ver with one small int32 run.
func rec(seg string, prev, ver uint32) *protocol.Replicate {
	data := wire.AppendU32(nil, ver)
	return &protocol.Replicate{
		Seg:         seg,
		PrevVersion: prev,
		Version:     ver,
		Diff: &wire.SegmentDiff{
			Version: ver,
			Blocks:  []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{{Start: 0, Count: 1, Data: data}}}},
		},
		Applied: []protocol.AppliedEntry{{WriterID: "w", Seq: ver, Version: ver}},
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func logFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), LogSuffix) {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no log file written")
	return ""
}

func TestAppendWindowReload(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Segment("seg/a")
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(1); v <= 3; v++ {
		if err := l.Append(rec("seg/a", v-1, v)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(l.Window(0)); got != 3 {
		t.Fatalf("Window(0) has %d records, want 3", got)
	}
	if got := l.Window(1); len(got) != 2 || got[0].Version != 2 || got[1].Version != 3 {
		t.Fatalf("Window(1) = %d records (want versions 2,3)", len(got))
	}
	if l.Size() <= 0 {
		t.Fatal("Size reports empty after appends")
	}

	// A fresh store over the same directory sees the same records.
	s2 := openStore(t, dir)
	if got := s2.Segments(); len(got) != 1 || got[0] != "seg/a" {
		t.Fatalf("Segments = %v", got)
	}
	l2, err := s2.Segment("seg/a")
	if err != nil {
		t.Fatal(err)
	}
	w := l2.Window(0)
	if len(w) != 3 || w[2].Version != 3 || w[2].Diff == nil || w[2].Applied[0].WriterID != "w" {
		t.Fatalf("reloaded window = %+v", w)
	}
	if l2.DroppedTail() {
		t.Error("clean log reported a dropped tail")
	}
}

func TestTornTailTruncatedOnLoad(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, _ := s.Segment("seg/t")
	for v := uint32(1); v <= 2; v++ {
		if err := l.Append(rec("seg/t", v-1, v)); err != nil {
			t.Fatal(err)
		}
	}
	path := logFile(t, dir)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: half of a third record lands.
	third := protocol.MarshalMessage(nil, rec("seg/t", 2, 3))
	torn := appendRecord(append([]byte(nil), clean...), third)
	torn = torn[:len(clean)+recordHeader+len(third)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	l2, _ := s2.Segment("seg/t")
	if !l2.DroppedTail() {
		t.Error("torn tail not reported")
	}
	if got := len(l2.Window(0)); got != 2 {
		t.Fatalf("recovered %d records, want 2", got)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, clean) {
		t.Fatalf("torn tail not truncated: %d bytes on disk, want %d", len(onDisk), len(clean))
	}
	// Appends continue cleanly on the truncated file.
	if err := l2.Append(rec("seg/t", 2, 3)); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir)
	l3, _ := s3.Segment("seg/t")
	if got := len(l3.Window(0)); got != 3 || l3.DroppedTail() {
		t.Fatalf("after post-truncation append: %d records, torn=%v", got, l3.DroppedTail())
	}
}

func TestCompactKeepsRecordsPastBase(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, _ := s.Segment("seg/c")
	for v := uint32(1); v <= 3; v++ {
		if err := l.Append(rec("seg/c", v-1, v)); err != nil {
			t.Fatal(err)
		}
	}
	base := []byte("sealed-base-at-2")
	if err := l.Compact(2, base); err != nil {
		t.Fatal(err)
	}
	got, ok, err := l.Base()
	if err != nil || !ok || !bytes.Equal(got, base) {
		t.Fatalf("Base = %q ok=%v err=%v", got, ok, err)
	}
	if w := l.Window(0); len(w) != 1 || w[0].Version != 3 {
		t.Fatalf("post-compaction window = %+v", w)
	}
	// Reload: the residual record survives on disk too.
	s2 := openStore(t, dir)
	l2, _ := s2.Segment("seg/c")
	if w := l2.Window(0); len(w) != 1 || w[0].Version != 3 {
		t.Fatalf("reloaded post-compaction window has %d records", len(w))
	}
	// Compacting at the head version empties the log entirely.
	if err := l2.Compact(3, []byte("sealed-base-at-3")); err != nil {
		t.Fatal(err)
	}
	if l2.Size() != 0 || len(l2.Window(0)) != 0 {
		t.Fatalf("full compaction left size=%d window=%d", l2.Size(), len(l2.Window(0)))
	}
}

func TestResetDiscardsEverything(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, _ := s.Segment("seg/r")
	if err := l.Append(rec("seg/r", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(1, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec("seg/r", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := l.Base(); ok {
		t.Error("base survived Reset")
	}
	if len(l.Window(0)) != 0 || l.Size() != 0 {
		t.Error("log survived Reset")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("Reset left files behind: %v", entries)
	}
}

func TestNeedsCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, _ := s.Segment("seg/n")
	if l.NeedsCompaction() {
		t.Error("empty log wants compaction")
	}
	for v := uint32(1); v <= 4; v++ {
		if err := l.Append(rec("seg/n", v-1, v)); err != nil {
			t.Fatal(err)
		}
	}
	if !l.NeedsCompaction() {
		t.Errorf("log of %d bytes under a 64-byte threshold does not want compaction", l.Size())
	}
}

// TestScanRecordsEveryPrefix is the byte-boundary half of the torn-
// write simulator: every truncation of a valid log must scan to
// exactly the records whose final byte survived, reporting torn for
// any cut that leaves a partial record.
func TestScanRecordsEveryPrefix(t *testing.T) {
	var image []byte
	var boundaries []int // offsets at which a record ends
	for v := uint32(1); v <= 3; v++ {
		image = appendRecord(image, protocol.MarshalMessage(nil, rec("seg/p", v-1, v)))
		boundaries = append(boundaries, len(image))
	}
	for cut := 0; cut <= len(image); cut++ {
		wantRecs := 0
		for _, b := range boundaries {
			if b <= cut {
				wantRecs++
			}
		}
		atBoundary := cut == 0
		for _, b := range boundaries {
			if b == cut {
				atBoundary = true
			}
		}
		recs, valid, torn := ScanRecords(image[:cut])
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), wantRecs)
		}
		if torn == atBoundary {
			t.Fatalf("cut %d: torn=%v, want %v", cut, torn, !atBoundary)
		}
		wantValid := 0
		if wantRecs > 0 {
			wantValid = boundaries[wantRecs-1]
		}
		if valid != wantValid {
			t.Fatalf("cut %d: valid prefix %d, want %d", cut, valid, wantValid)
		}
	}
}

// FuzzJournalDecode throws truncations, bit flips, and garbage at the
// record scanner: it must never panic, must report a valid prefix no
// longer than the input, and re-scanning exactly that prefix must
// parse fully and identically.
func FuzzJournalDecode(f *testing.F) {
	var image []byte
	for v := uint32(1); v <= 3; v++ {
		image = appendRecord(image, protocol.MarshalMessage(nil, rec("seg/f", v-1, v)))
	}
	f.Add(image)
	f.Add(image[:len(image)-3])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a journal"))
	flipped := append([]byte(nil), image...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn := ScanRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		if !torn && valid != len(data) {
			t.Fatalf("not torn but valid prefix %d != %d", valid, len(data))
		}
		recs2, valid2, torn2 := ScanRecords(data[:valid])
		if torn2 || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("re-scan of valid prefix: %d records valid=%d torn=%v, want %d records valid=%d torn=false",
				len(recs2), valid2, torn2, len(recs), valid)
		}
		for _, r := range recs {
			if r == nil {
				t.Fatal("nil record in valid prefix")
			}
		}
	})
}

// BenchmarkJournalAppend measures the per-release durability cost: a
// sealed record of a representative small diff written (no fsync)
// through the append path.
func BenchmarkJournalAppend(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	l, err := s.Segment("bench/append")
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint32(i + 1)
		m := &protocol.Replicate{
			Seg:         "bench/append",
			PrevVersion: v - 1,
			Version:     v,
			Diff: &wire.SegmentDiff{
				Version: v,
				Blocks:  []wire.BlockDiff{{Serial: 1, Runs: []wire.Run{{Start: 0, Count: 256, Data: data}}}},
			},
		}
		if err := l.Append(m); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(recordHeader + len(protocol.MarshalMessage(nil, m))))
	}
}
