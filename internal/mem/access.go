package mem

import (
	"bytes"
	"fmt"
	"math"

	"interweave/internal/arch"
)

// This file implements the data access paths of the simulated heap.
//
// Stores go through Write*, which emulate the MMU: the first store to
// a write-protected page takes a simulated fault — a pristine twin of
// the page is copied into the subsegment's pagemap and the page is
// un-protected — after which the store proceeds. Library-internal
// writes (zeroing fresh blocks, applying incoming diffs) use RawWrite*
// and bypass fault tracking, just as the real library writes below
// the protection machinery.

// View returns a read-only view of [a, a+n). The caller must not
// modify the returned slice.
func (h *Heap) View(a Addr, n int) ([]byte, error) {
	ss, off, err := h.resolve(a, n)
	if err != nil {
		return nil, err
	}
	return ss.Data[off : off+n : off+n], nil
}

// MutView returns a writable view of [a, a+n) that bypasses fault
// tracking. It is for library-internal writes (diff application);
// application stores must use Write* so that modification tracking
// sees them.
func (h *Heap) MutView(a Addr, n int) ([]byte, error) {
	ss, off, err := h.resolve(a, n)
	if err != nil {
		return nil, err
	}
	return ss.Data[off : off+n : off+n], nil
}

// Write stores src at a through the fault path.
func (h *Heap) Write(a Addr, src []byte) error {
	ss, off, err := h.resolve(a, len(src))
	if err != nil {
		return err
	}
	ss.faultRange(off, len(src))
	copy(ss.Data[off:], src)
	return nil
}

// RawWrite stores src at a without fault tracking.
func (h *Heap) RawWrite(a Addr, src []byte) error {
	ss, off, err := h.resolve(a, len(src))
	if err != nil {
		return err
	}
	copy(ss.Data[off:], src)
	return nil
}

// RawWriteZero zeroes [a, a+n) without fault tracking.
func (h *Heap) RawWriteZero(a Addr, n int) error {
	ss, off, err := h.resolve(a, n)
	if err != nil {
		return err
	}
	clear(ss.Data[off : off+n])
	return nil
}

// faultRange takes simulated write faults for every protected page
// overlapping [off, off+n).
func (ss *SubSeg) faultRange(off, n int) {
	first := off >> arch.PageShift
	last := (off + n - 1) >> arch.PageShift
	for p := first; p <= last; p++ {
		if !ss.protected[p] {
			continue
		}
		h := ss.Seg.heap
		h.stats.Faults++
		if ss.twins[p] == nil {
			twin := make([]byte, arch.PageSize)
			copy(twin, ss.Data[p<<arch.PageShift:(p+1)<<arch.PageShift])
			ss.twins[p] = twin
			h.stats.Twins++
		}
		ss.protected[p] = false
	}
}

// WriteProtect write-protects every page of the segment's local copy.
// The client library calls this at write-lock acquisition so that the
// first store to each page faults and creates a twin.
func (s *SegMem) WriteProtect() {
	for ss := s.first; ss != nil; ss = ss.Next {
		for i := range ss.protected {
			ss.protected[i] = true
		}
		s.heap.stats.Protects += uint64(len(ss.protected))
	}
}

// Unprotect removes write protection from every page without touching
// twins.
func (s *SegMem) Unprotect() {
	for ss := s.first; ss != nil; ss = ss.Next {
		for i := range ss.protected {
			ss.protected[i] = false
		}
	}
}

// DropTwins discards all twins after diff collection.
func (s *SegMem) DropTwins() {
	for ss := s.first; ss != nil; ss = ss.Next {
		for i := range ss.twins {
			ss.twins[i] = nil
		}
	}
}

// ModifiedRange is a maximal run of consecutive twinned pages within
// one subsegment, the unit of word-by-word diffing.
type ModifiedRange struct {
	Sub       *SubSeg
	FirstPage int
	NumPages  int
}

// ModifiedRanges returns the twinned page runs of the segment in
// address order.
func (s *SegMem) ModifiedRanges() []ModifiedRange {
	var out []ModifiedRange
	for ss := s.first; ss != nil; ss = ss.Next {
		i := 0
		for i < len(ss.twins) {
			if ss.twins[i] == nil {
				i++
				continue
			}
			j := i
			for j < len(ss.twins) && ss.twins[j] != nil {
				j++
			}
			out = append(out, ModifiedRange{Sub: ss, FirstPage: i, NumPages: j - i})
			i = j
		}
	}
	return out
}

// Typed accessors. Multi-byte values honor the heap's profile byte
// order; pointer cells are WordSize bytes.

// ReadU8 loads one byte.
func (h *Heap) ReadU8(a Addr) (byte, error) {
	v, err := h.View(a, 1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

// WriteU8 stores one byte through the fault path.
func (h *Heap) WriteU8(a Addr, v byte) error {
	return h.Write(a, []byte{v})
}

// ReadI16 loads a 16-bit integer in local byte order.
func (h *Heap) ReadI16(a Addr) (int16, error) {
	v, err := h.View(a, 2)
	if err != nil {
		return 0, err
	}
	return int16(h.prof.Order.Uint16(v)), nil
}

// WriteI16 stores a 16-bit integer in local byte order.
func (h *Heap) WriteI16(a Addr, v int16) error {
	var buf [2]byte
	h.prof.Order.PutUint16(buf[:], uint16(v))
	return h.Write(a, buf[:])
}

// ReadI32 loads a 32-bit integer in local byte order.
func (h *Heap) ReadI32(a Addr) (int32, error) {
	v, err := h.View(a, 4)
	if err != nil {
		return 0, err
	}
	return int32(h.prof.Order.Uint32(v)), nil
}

// WriteI32 stores a 32-bit integer in local byte order.
func (h *Heap) WriteI32(a Addr, v int32) error {
	var buf [4]byte
	h.prof.Order.PutUint32(buf[:], uint32(v))
	return h.Write(a, buf[:])
}

// ReadI64 loads a 64-bit integer in local byte order.
func (h *Heap) ReadI64(a Addr) (int64, error) {
	v, err := h.View(a, 8)
	if err != nil {
		return 0, err
	}
	return int64(h.prof.Order.Uint64(v)), nil
}

// WriteI64 stores a 64-bit integer in local byte order.
func (h *Heap) WriteI64(a Addr, v int64) error {
	var buf [8]byte
	h.prof.Order.PutUint64(buf[:], uint64(v))
	return h.Write(a, buf[:])
}

// ReadF32 loads a 32-bit float in local byte order.
func (h *Heap) ReadF32(a Addr) (float32, error) {
	v, err := h.ReadI32(a)
	if err != nil {
		return 0, err
	}
	return f32frombits(uint32(v)), nil
}

// WriteF32 stores a 32-bit float in local byte order.
func (h *Heap) WriteF32(a Addr, v float32) error {
	return h.WriteI32(a, int32(f32bits(v)))
}

// ReadF64 loads a 64-bit float in local byte order.
func (h *Heap) ReadF64(a Addr) (float64, error) {
	v, err := h.ReadI64(a)
	if err != nil {
		return 0, err
	}
	return f64frombits(uint64(v)), nil
}

// WriteF64 stores a 64-bit float in local byte order.
func (h *Heap) WriteF64(a Addr, v float64) error {
	return h.WriteI64(a, int64(f64bits(v)))
}

// ReadPtr loads a pointer cell: WordSize bytes in local byte order.
// A zero value is the nil pointer.
func (h *Heap) ReadPtr(a Addr) (Addr, error) {
	if h.prof.WordSize == 4 {
		v, err := h.View(a, 4)
		if err != nil {
			return 0, err
		}
		return Addr(h.prof.Order.Uint32(v)), nil
	}
	v, err := h.View(a, 8)
	if err != nil {
		return 0, err
	}
	return Addr(h.prof.Order.Uint64(v)), nil
}

// WritePtr stores a pointer cell through the fault path.
func (h *Heap) WritePtr(a Addr, p Addr) error {
	if h.prof.WordSize == 4 {
		if p > 0xFFFFFFFF {
			return fmt.Errorf("mem: pointer %#x exceeds 32-bit word", uint64(p))
		}
		var buf [4]byte
		h.prof.Order.PutUint32(buf[:], uint32(p))
		return h.Write(a, buf[:])
	}
	var buf [8]byte
	h.prof.Order.PutUint64(buf[:], uint64(p))
	return h.Write(a, buf[:])
}

// RawWritePtr stores a pointer cell without fault tracking.
func (h *Heap) RawWritePtr(a Addr, p Addr) error {
	if h.prof.WordSize == 4 {
		if p > 0xFFFFFFFF {
			return fmt.Errorf("mem: pointer %#x exceeds 32-bit word", uint64(p))
		}
		var buf [4]byte
		h.prof.Order.PutUint32(buf[:], uint32(p))
		return h.RawWrite(a, buf[:])
	}
	var buf [8]byte
	h.prof.Order.PutUint64(buf[:], uint64(p))
	return h.RawWrite(a, buf[:])
}

// ReadCString loads a NUL-terminated string from a fixed-capacity
// string cell.
func (h *Heap) ReadCString(a Addr, capacity int) (string, error) {
	v, err := h.View(a, capacity)
	if err != nil {
		return "", err
	}
	if i := bytes.IndexByte(v, 0); i >= 0 {
		v = v[:i]
	}
	return string(v), nil
}

// WriteCString stores s into a fixed-capacity string cell, padding
// with NULs. s must leave room for the terminator.
func (h *Heap) WriteCString(a Addr, capacity int, s string) error {
	if len(s) >= capacity {
		return fmt.Errorf("mem: string of %d bytes overflows capacity %d", len(s), capacity)
	}
	buf := make([]byte, capacity)
	copy(buf, s)
	return h.Write(a, buf)
}

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }
func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
