package mem

import (
	"math/rand"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/types"
)

func newHeap(t *testing.T, p *arch.Profile) *Heap {
	t.Helper()
	h, err := NewHeap(p)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newSeg(t *testing.T, h *Heap, name string) *SegMem {
	t.Helper()
	s, err := h.NewSegment(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func layoutOf(t *testing.T, typ *types.Type, p *arch.Profile) *types.Layout {
	t.Helper()
	l, err := types.Of(typ, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func intArrayLayout(t *testing.T, p *arch.Profile, n int) *types.Layout {
	t.Helper()
	a, err := types.ArrayOf(types.Int32(), n)
	if err != nil {
		t.Fatal(err)
	}
	return layoutOf(t, a, p)
}

func TestNewHeapRejectsBadProfile(t *testing.T) {
	if _, err := NewHeap(nil); err == nil {
		t.Error("NewHeap(nil) succeeded")
	}
}

func TestSegmentLifecycle(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	if _, err := h.NewSegment(""); err == nil {
		t.Error("empty segment name accepted")
	}
	s := newSeg(t, h, "host/seg")
	if _, err := h.NewSegment("host/seg"); err == nil {
		t.Error("duplicate segment accepted")
	}
	got, ok := h.Segment("host/seg")
	if !ok || got != s {
		t.Error("Segment lookup failed")
	}
	if len(h.Segments()) != 1 {
		t.Errorf("Segments() = %v", h.Segments())
	}
	// Allocate so the segment owns subsegments, then drop it.
	if _, err := s.Alloc(intArrayLayout(t, arch.AMD64(), 10), 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := h.DropSegment("host/seg"); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Segment("host/seg"); ok {
		t.Error("segment still present after drop")
	}
	if err := h.DropSegment("host/seg"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestAllocBasics(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	l := intArrayLayout(t, arch.AMD64(), 4)
	b1, err := s.Alloc(l, 1, "head")
	if err != nil {
		t.Fatal(err)
	}
	if b1.Serial != 1 {
		t.Errorf("first serial = %d, want 1", b1.Serial)
	}
	if b1.Size() != 16 || b1.PrimCount() != 4 {
		t.Errorf("Size=%d PrimCount=%d", b1.Size(), b1.PrimCount())
	}
	if !b1.Pending {
		t.Error("new block not Pending")
	}
	b2, err := s.Alloc(l, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Serial != 2 {
		t.Errorf("second serial = %d", b2.Serial)
	}
	if b2.Size() != 48 {
		t.Errorf("3-element block size = %d, want 48", b2.Size())
	}
	if got, ok := s.BlockByName("head"); !ok || got != b1 {
		t.Error("BlockByName failed")
	}
	if got, ok := s.BlockBySerial(2); !ok || got != b2 {
		t.Error("BlockBySerial failed")
	}
	if s.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d", s.NumBlocks())
	}
	// New blocks are zeroed.
	v, err := h.View(b1.Addr, b1.Size())
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("byte %d of fresh block = %d", i, x)
		}
	}
	// Blocks iterate in serial order.
	var serials []uint32
	s.Blocks(func(b *Block) bool {
		serials = append(serials, b.Serial)
		return true
	})
	if len(serials) != 2 || serials[0] != 1 || serials[1] != 2 {
		t.Errorf("Blocks order = %v", serials)
	}
}

func TestAllocErrors(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	l := intArrayLayout(t, arch.AMD64(), 1)
	if _, err := s.Alloc(nil, 1, ""); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := s.Alloc(l, 0, ""); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := s.Alloc(intArrayLayout(t, arch.X86(), 1), 1, ""); err == nil {
		t.Error("cross-profile layout accepted")
	}
	if _, err := s.Alloc(l, 1, "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(l, 1, "dup"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.AllocWithSerial(0, l, 1, ""); err == nil {
		t.Error("serial 0 accepted")
	}
	if _, err := s.AllocWithSerial(1, l, 1, ""); err == nil {
		t.Error("duplicate serial accepted")
	}
}

func TestAllocWithSerialBumpsNext(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	l := intArrayLayout(t, arch.AMD64(), 1)
	if _, err := s.AllocWithSerial(10, l, 1, ""); err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(l, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if b.Serial != 11 {
		t.Errorf("serial after explicit 10 = %d, want 11", b.Serial)
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	l := intArrayLayout(t, arch.AMD64(), 64) // 256 bytes
	b1, err := s.Alloc(l, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Alloc(l, 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := b1.Addr
	if err := s.Free(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b1); err == nil {
		t.Error("double free succeeded")
	}
	if _, ok := s.BlockByName("a"); ok {
		t.Error("freed block still named")
	}
	if _, ok := h.BlockAt(addr1); ok {
		t.Error("freed block still found by address")
	}
	// The freed space is reused (first fit).
	b3, err := s.Alloc(l, 1, "c")
	if err != nil {
		t.Fatal(err)
	}
	if b3.Addr != addr1 {
		t.Errorf("reused addr = %#x, want %#x", uint64(b3.Addr), uint64(addr1))
	}
	_ = b2
	if err := s.Free(nil); err == nil {
		t.Error("Free(nil) succeeded")
	}
}

func TestFreeCoalescing(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	l := intArrayLayout(t, arch.AMD64(), 64) // 256 bytes each
	var blocks []*Block
	for i := 0; i < 8; i++ {
		b, err := s.Alloc(l, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	base := blocks[0].Addr
	for _, b := range blocks {
		if err := s.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, a large block fits in the coalesced
	// space without growing a new subsegment.
	big := intArrayLayout(t, arch.AMD64(), 512) // 2048 bytes
	nb, err := s.Alloc(big, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if nb.Addr != base {
		t.Errorf("coalesced alloc at %#x, want %#x", uint64(nb.Addr), uint64(base))
	}
}

func TestMultiPageAndSubsegGrowth(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	big := intArrayLayout(t, arch.AMD64(), 4096) // 16 KiB, 4 pages
	b1, err := s.Alloc(big, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	ss := b1.Sub
	if ss.Pages() < 4 {
		t.Errorf("subseg pages = %d, want >= 4", ss.Pages())
	}
	b2, err := s.Alloc(big, 4, "") // 64 KiB forces growth
	if err != nil {
		t.Fatal(err)
	}
	if b2.Sub == ss {
		t.Error("second big block should live in a new subsegment")
	}
	// Subsegment list order.
	if s.FirstSubSeg() != ss || ss.Next != b2.Sub {
		t.Error("subsegment list order wrong")
	}
	// Guard gap between subsegments.
	if ss.End() >= b2.Sub.Base {
		t.Error("no guard gap between subsegments")
	}
}

func TestBlockAtBoundaries(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	l := intArrayLayout(t, arch.AMD64(), 8)
	b, err := s.Alloc(l, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := h.BlockAt(b.Addr); !ok || got != b {
		t.Error("BlockAt(start) failed")
	}
	if got, ok := h.BlockAt(b.Addr + Addr(b.Size()-1)); !ok || got != b {
		t.Error("BlockAt(last byte) failed")
	}
	if _, ok := h.BlockAt(b.End()); ok {
		t.Error("BlockAt(end) found block")
	}
	if _, ok := h.BlockAt(0); ok {
		t.Error("BlockAt(0) found block")
	}
	if _, ok := h.BlockAt(0xDEAD0000000); ok {
		t.Error("BlockAt(unmapped) found block")
	}
}

func TestViewErrors(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	b, err := s.Alloc(intArrayLayout(t, arch.AMD64(), 4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.View(0, 1); err == nil {
		t.Error("View(0) succeeded")
	}
	if _, err := h.View(b.Sub.End()-1, 2); err == nil {
		t.Error("View crossing subsegment end succeeded")
	}
	if _, err := h.View(b.Sub.End()+arch.PageSize*2, 1); err == nil {
		t.Error("View into guard gap succeeded")
	}
}

func TestAccessorsAllProfiles(t *testing.T) {
	for _, p := range arch.Profiles() {
		t.Run(p.Name, func(t *testing.T) {
			h := newHeap(t, p)
			s := newSeg(t, h, "s")
			b, err := s.Alloc(intArrayLayout(t, p, 256), 1, "")
			if err != nil {
				t.Fatal(err)
			}
			a := b.Addr
			if err := h.WriteU8(a, 0x7F); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadU8(a); v != 0x7F {
				t.Errorf("U8 = %#x", v)
			}
			if err := h.WriteI16(a+2, -12345); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadI16(a + 2); v != -12345 {
				t.Errorf("I16 = %d", v)
			}
			if err := h.WriteI32(a+4, -123456789); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadI32(a + 4); v != -123456789 {
				t.Errorf("I32 = %d", v)
			}
			if err := h.WriteI64(a+8, -1234567890123); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadI64(a + 8); v != -1234567890123 {
				t.Errorf("I64 = %d", v)
			}
			if err := h.WriteF32(a+16, 3.25); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadF32(a + 16); v != 3.25 {
				t.Errorf("F32 = %v", v)
			}
			if err := h.WriteF64(a+24, -2.5e101); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadF64(a + 24); v != -2.5e101 {
				t.Errorf("F64 = %v", v)
			}
			if err := h.WritePtr(a+32, b.Addr); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadPtr(a + 32); v != b.Addr {
				t.Errorf("Ptr = %#x", uint64(v))
			}
			if err := h.WriteCString(a+64, 16, "interweave"); err != nil {
				t.Fatal(err)
			}
			if v, _ := h.ReadCString(a+64, 16); v != "interweave" {
				t.Errorf("CString = %q", v)
			}
			if err := h.WriteCString(a+64, 4, "toolong"); err == nil {
				t.Error("overlong string accepted")
			}
		})
	}
}

func TestEndianessOfLocalFormat(t *testing.T) {
	hBE := newHeap(t, arch.Sparc())
	hLE := newHeap(t, arch.X86())
	for _, h := range []*Heap{hBE, hLE} {
		s := newSeg(t, h, "s")
		b, err := s.Alloc(intArrayLayout(t, h.Profile(), 4), 1, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriteI32(b.Addr, 0x01020304); err != nil {
			t.Fatal(err)
		}
		v, err := h.View(b.Addr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if h.Profile().BigEndian() {
			if v[0] != 1 || v[3] != 4 {
				t.Errorf("BE local bytes = %v", v)
			}
		} else {
			if v[0] != 4 || v[3] != 1 {
				t.Errorf("LE local bytes = %v", v)
			}
		}
	}
}

func TestPtr32Overflow(t *testing.T) {
	h := newHeap(t, arch.X86())
	s := newSeg(t, h, "s")
	b, err := s.Alloc(intArrayLayout(t, arch.X86(), 4), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePtr(b.Addr, 0x1_0000_0000); err == nil {
		t.Error("64-bit pointer accepted on 32-bit profile")
	}
	if err := h.RawWritePtr(b.Addr, 0x1_0000_0000); err == nil {
		t.Error("64-bit raw pointer accepted on 32-bit profile")
	}
}

func TestFaultPathCreatesTwins(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	// Two pages worth of ints.
	b, err := s.Alloc(intArrayLayout(t, arch.AMD64(), 2*arch.PageWords), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteI32(b.Addr, 7); err != nil { // pre-protection write
		t.Fatal(err)
	}
	if h.Stats().Faults != 0 {
		t.Error("unprotected write faulted")
	}
	s.WriteProtect()
	if err := h.WriteI32(b.Addr+8, 42); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Faults != 1 || st.Twins != 1 {
		t.Errorf("after first write: faults=%d twins=%d", st.Faults, st.Twins)
	}
	// Second write to same page: no new fault.
	if err := h.WriteI32(b.Addr+16, 43); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Faults != 1 {
		t.Error("second write to unprotected page faulted")
	}
	// Twin holds the pristine content (7 at offset 0).
	ss := b.Sub
	page0 := int(b.Addr-ss.Base) >> arch.PageShift
	twin := ss.Twin(page0)
	if twin == nil {
		t.Fatal("no twin for written page")
	}
	off := int(b.Addr-ss.Base) & (arch.PageSize - 1)
	if got := h.Profile().Order.Uint32(twin[off:]); got != 7 {
		t.Errorf("twin[0] = %d, want pristine 7", got)
	}
	// The live page holds the new value.
	if v, _ := h.ReadI32(b.Addr + 8); v != 42 {
		t.Errorf("live value = %d", v)
	}
	// A write spanning into the second page twins it too.
	if err := h.WriteI64(b.Addr+Addr(arch.PageSize)-4, 1); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Twins != 2 {
		t.Errorf("twins = %d after page-spanning write, want 2", h.Stats().Twins)
	}
	ranges := s.ModifiedRanges()
	if len(ranges) != 1 || ranges[0].NumPages != 2 {
		t.Errorf("ModifiedRanges = %+v, want one 2-page range", ranges)
	}
	s.DropTwins()
	if len(s.ModifiedRanges()) != 0 {
		t.Error("ranges remain after DropTwins")
	}
}

func TestRawWriteBypassesFaults(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	b, err := s.Alloc(intArrayLayout(t, arch.AMD64(), 16), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	s.WriteProtect()
	if err := h.RawWrite(b.Addr, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Faults != 0 || st.Twins != 0 {
		t.Errorf("raw write faulted: %+v", st)
	}
	// Page remains protected, so a later tracked write still faults.
	if err := h.WriteI32(b.Addr+8, 9); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Faults != 1 {
		t.Error("tracked write after raw write did not fault")
	}
}

func TestUnprotect(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	b, err := s.Alloc(intArrayLayout(t, arch.AMD64(), 16), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	s.WriteProtect()
	s.Unprotect()
	if err := h.WriteI32(b.Addr, 5); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Faults != 0 {
		t.Error("write after Unprotect faulted")
	}
}

func TestModifiedRangesDisjoint(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	// 8 pages of ints.
	b, err := s.Alloc(intArrayLayout(t, arch.AMD64(), 8*arch.PageWords), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	s.WriteProtect()
	// Touch pages 1, 2, and 5 (relative to block start page).
	base := b.Addr
	for _, pg := range []int{1, 2, 5} {
		if err := h.WriteI32(base+Addr(pg*arch.PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	ranges := s.ModifiedRanges()
	if len(ranges) != 2 {
		t.Fatalf("ranges = %+v, want 2 (pages 1-2 and 5)", ranges)
	}
	if ranges[0].NumPages != 2 || ranges[1].NumPages != 1 {
		t.Errorf("range sizes = %d,%d; want 2,1", ranges[0].NumPages, ranges[1].NumPages)
	}
}

func TestAddressSpaceExhaustion32(t *testing.T) {
	h := newHeap(t, arch.X86())
	s := newSeg(t, h, "s")
	// Place the brk just below the 32-bit ceiling; the next
	// subsegment (data + guard page) must be refused.
	h.next = 0xFFFFFFFF - 2*arch.PageSize + 1
	_, err := s.Alloc(intArrayLayout(t, arch.X86(), 4*arch.PageWords), 1, "")
	if err == nil {
		t.Fatal("allocation past 32-bit address space succeeded")
	}
	// A 64-bit heap at the same brk is fine.
	h64 := newHeap(t, arch.AMD64())
	s64 := newSeg(t, h64, "s")
	h64.next = 0xFFFFFFFF - 2*arch.PageSize + 1
	if _, err := s64.Alloc(intArrayLayout(t, arch.AMD64(), 4*arch.PageWords), 1, ""); err != nil {
		t.Fatalf("64-bit heap refused allocation: %v", err)
	}
}

// TestRandomAllocFree drives random allocation and free traffic and
// checks the structural invariants: live blocks never overlap, every
// interior address resolves to its block, and freed space is reused.
func TestRandomAllocFree(t *testing.T) {
	h := newHeap(t, arch.AMD64())
	s := newSeg(t, h, "s")
	rng := rand.New(rand.NewSource(7))
	live := make(map[uint32]*Block)
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			n := 1 + rng.Intn(200)
			b, err := s.Alloc(intArrayLayout(t, arch.AMD64(), n), 1, "")
			if err != nil {
				t.Fatalf("step %d: alloc: %v", step, err)
			}
			live[b.Serial] = b
		} else {
			for _, b := range live {
				if err := s.Free(b); err != nil {
					t.Fatalf("step %d: free: %v", step, err)
				}
				delete(live, b.Serial)
				break
			}
		}
	}
	// No two live blocks overlap, and lookups resolve.
	type ext struct{ lo, hi Addr }
	var exts []ext
	for _, b := range live {
		exts = append(exts, ext{b.Addr, b.End()})
		for _, probe := range []Addr{b.Addr, b.Addr + Addr(b.Size()/2), b.End() - 1} {
			got, ok := h.BlockAt(probe)
			if !ok || got != b {
				t.Fatalf("BlockAt(%#x) = %v,%v; want block %d", uint64(probe), got, ok, b.Serial)
			}
		}
	}
	for i := range exts {
		for j := i + 1; j < len(exts); j++ {
			a, b := exts[i], exts[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatal("live blocks overlap")
			}
		}
	}
	if s.NumBlocks() != len(live) {
		t.Errorf("NumBlocks = %d, want %d", s.NumBlocks(), len(live))
	}
}
