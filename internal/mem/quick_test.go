package mem

import (
	"testing"
	"testing/quick"

	"interweave/internal/arch"
)

// TestQuickAllocatorModel drives the segment allocator with arbitrary
// operation sequences and checks it against a simple model: live
// blocks never overlap, lookups resolve, zeroing holds, and the
// address space only grows when needed.
func TestQuickAllocatorModel(t *testing.T) {
	l := intArrayLayout(t, arch.AMD64(), 1)
	fn := func(ops []uint16) bool {
		h, err := NewHeap(arch.AMD64())
		if err != nil {
			return false
		}
		s, err := h.NewSegment("q/s")
		if err != nil {
			return false
		}
		type liveBlock struct {
			b *Block
		}
		var live []liveBlock
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// Free a pseudo-random live block.
				idx := int(op/3) % len(live)
				if err := s.Free(live[idx].b); err != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			count := 1 + int(op%97)
			b, err := s.Alloc(l, count, "")
			if err != nil {
				return false
			}
			// Fresh blocks are zeroed.
			v, err := h.View(b.Addr, b.Size())
			if err != nil {
				return false
			}
			for _, x := range v {
				if x != 0 {
					return false
				}
			}
			// Scribble so reuse without zeroing would be caught.
			if err := h.RawWrite(b.Addr, []byte{0xFF, 0xEE, 0xDD, 0xCC}); err != nil {
				return false
			}
			live = append(live, liveBlock{b})
		}
		// Invariants over the survivors.
		if s.NumBlocks() != len(live) {
			return false
		}
		for i := range live {
			a := live[i].b
			got, ok := h.BlockAt(a.Addr + Addr(a.Size()/2))
			if !ok || got != a {
				return false
			}
			for j := i + 1; j < len(live); j++ {
				b := live[j].b
				if a.Addr < b.End() && b.Addr < a.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
