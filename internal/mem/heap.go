// Package mem implements InterWeave's client-side memory management:
// a simulated byte-addressable heap holding cached segments.
//
// In the original system a segment's local copy lives in raw process
// memory: a collection of page-aligned, contiguous subsegments, with
// blocks allocated inside them by InterWeave's own heap routines, and
// modification tracking done by write-protecting pages and copying
// twins at fault time (paper Section 3.1). Go cannot expose raw
// process memory this way, so this package supplies the closest
// equivalent: a 64-bit simulated address space carved into 4 KiB
// pages, with subsegments backed by byte slices. Typed accessors
// stand in for the MMU — the first store to a protected page "faults",
// copies a pristine twin, records it in the subsegment's pagemap, and
// un-protects the page, exactly the paper's fault path.
//
// The metadata mirrors Figure 2 of the paper: a segment table keyed
// by name; per-segment balanced trees of blocks by serial number and
// by symbolic name; a global balanced tree of subsegments by address;
// and a per-subsegment balanced tree of blocks by address.
package mem

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"interweave/internal/arch"
	"interweave/internal/rbtree"
	"interweave/internal/types"
)

// Addr is a simulated virtual address.
type Addr uint64

// heapBase is the first address handed out; low addresses are kept
// invalid so that a zero Addr is always "nil".
const heapBase Addr = 0x10000

// Common errors returned by heap operations.
var (
	ErrBadAddress   = errors.New("mem: address not mapped")
	ErrCrossesEnd   = errors.New("mem: access crosses subsegment end")
	ErrDupName      = errors.New("mem: duplicate block name")
	ErrNoSuchBlock  = errors.New("mem: no such block")
	ErrAddressSpace = errors.New("mem: out of address space for this word size")
)

// Stats counts fault-path events, mirroring the costs the paper's
// no-diff mode exists to avoid.
type Stats struct {
	// Faults is the number of simulated write faults taken.
	Faults uint64
	// Twins is the number of page twins created.
	Twins uint64
	// Protects is the number of pages write-protected.
	Protects uint64
}

// Heap is one client's simulated address space. All cached segments
// of the client live in a single heap, so cross-segment pointers are
// plain addresses. Heap is not safe for concurrent use; the client
// library serializes access.
type Heap struct {
	prof    *arch.Profile
	subsegs *rbtree.Tree[Addr, *SubSeg] // subseg_addr_tree (global)
	segs    map[string]*SegMem          // segment table
	next    Addr
	stats   Stats
}

// NewHeap returns an empty heap whose local data formats follow prof.
func NewHeap(prof *arch.Profile) (*Heap, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Heap{
		prof: prof,
		subsegs: rbtree.New[Addr, *SubSeg](func(a, b Addr) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}),
		segs: make(map[string]*SegMem),
		next: heapBase,
	}, nil
}

// Profile returns the heap's machine profile.
func (h *Heap) Profile() *arch.Profile { return h.prof }

// Stats returns a copy of the fault-path counters.
func (h *Heap) Stats() Stats { return h.stats }

// ResetStats zeroes the fault-path counters.
func (h *Heap) ResetStats() { h.stats = Stats{} }

// SegMem is the cached local copy of one segment: a linked list of
// subsegments plus the per-segment metadata trees and free list of
// Figure 2.
type SegMem struct {
	heap       *Heap
	name       string
	first      *SubSeg
	last       *SubSeg
	byNumber   *rbtree.Tree[uint32, *Block] // blk_number_tree
	byName     *rbtree.Tree[string, *Block] // blk_name_tree
	free       *span                        // free list, sorted by address
	nextSerial uint32
	blockCount int
}

// span is a node in a segment's free list.
type span struct {
	addr Addr
	size int
	next *span
}

// SubSeg is one contiguous, page-multiple chunk of a segment's local
// copy. Fields are read-only outside this package.
type SubSeg struct {
	Seg  *SegMem
	Base Addr
	Data []byte
	// Next links subsegments of the same segment in allocation
	// order.
	Next *SubSeg
	// protected marks pages that will fault on the next store.
	protected []bool
	// twins is the pagemap: twins[i] is the pristine copy of page i
	// taken at fault time, or nil.
	twins [][]byte
	// blocks is the blk_addr_tree of blocks starting in this
	// subsegment.
	blocks *rbtree.Tree[Addr, *Block]
}

// Pages returns the number of pages in the subsegment.
func (ss *SubSeg) Pages() int { return len(ss.Data) / arch.PageSize }

// End returns the address one past the subsegment.
func (ss *SubSeg) End() Addr { return ss.Base + Addr(len(ss.Data)) }

// Twin returns the pristine copy of page i, or nil if the page has
// not faulted since protection was last enabled.
func (ss *SubSeg) Twin(i int) []byte { return ss.twins[i] }

// Protected reports whether page i is write-protected.
func (ss *SubSeg) Protected(i int) bool { return ss.protected[i] }

// AscendBlocks calls fn for each block starting at or after from, in
// address order, until fn returns false.
func (ss *SubSeg) AscendBlocks(from Addr, fn func(*Block) bool) {
	ss.blocks.AscendFrom(from, func(_ Addr, b *Block) bool { return fn(b) })
}

// Block is one typed allocation inside a segment. Fields are
// read-only outside this package.
type Block struct {
	Serial uint32
	Name   string
	Addr   Addr
	Layout *types.Layout
	// Count is the number of elements of Layout.Type the block
	// holds (IW_malloc of an n-element block).
	Count int
	// DescSerial is the segment-specific serial of the block's type
	// descriptor, assigned when the descriptor is registered with
	// the server; zero until then.
	DescSerial uint32
	// Pending marks a block created locally since the last diff
	// collection; such blocks travel whole, not as twins' diffs.
	Pending bool
	Sub     *SubSeg
	// prevAddr/nextAddr thread the subsegment's blocks in address
	// order, giving O(1) "next block in memory" for the last-block
	// prediction of diff application.
	prevAddr, nextAddr *Block
}

// NextByAddr returns the next block in address order within the same
// subsegment, or nil.
func (b *Block) NextByAddr() *Block { return b.nextAddr }

// Size returns the block's local size in bytes.
func (b *Block) Size() int { return b.Layout.Size * b.Count }

// PrimCount returns the block's total number of primitive units.
func (b *Block) PrimCount() int { return b.Layout.PrimCount * b.Count }

// End returns the address one past the block's last byte.
func (b *Block) End() Addr { return b.Addr + Addr(b.Size()) }

// NewSegment creates an empty cached segment under the given name.
func (h *Heap) NewSegment(name string) (*SegMem, error) {
	if name == "" {
		return nil, errors.New("mem: empty segment name")
	}
	if _, ok := h.segs[name]; ok {
		return nil, fmt.Errorf("mem: segment %q already cached", name)
	}
	s := &SegMem{
		heap: h,
		name: name,
		byNumber: rbtree.New[uint32, *Block](func(a, b uint32) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}),
		byName: rbtree.New[string, *Block](func(a, b string) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}),
		nextSerial: 1,
	}
	h.segs[name] = s
	return s, nil
}

// Segment returns the cached segment with the given name.
func (h *Heap) Segment(name string) (*SegMem, bool) {
	s, ok := h.segs[name]
	return s, ok
}

// Segments returns the names of all cached segments.
func (h *Heap) Segments() []string {
	out := make([]string, 0, len(h.segs))
	for n := range h.segs {
		out = append(out, n)
	}
	return out
}

// DropSegment removes a cached segment and unmaps its subsegments.
func (h *Heap) DropSegment(name string) error {
	s, ok := h.segs[name]
	if !ok {
		return fmt.Errorf("mem: segment %q not cached", name)
	}
	for ss := s.first; ss != nil; ss = ss.Next {
		h.subsegs.Delete(ss.Base)
	}
	delete(h.segs, name)
	return nil
}

// Name returns the segment's name.
func (s *SegMem) Name() string { return s.name }

// Heap returns the owning heap.
func (s *SegMem) Heap() *Heap { return s.heap }

// FirstSubSeg returns the head of the subsegment list.
func (s *SegMem) FirstSubSeg() *SubSeg { return s.first }

// NumBlocks returns the number of live blocks.
func (s *SegMem) NumBlocks() int { return s.blockCount }

// NextSerial returns the serial number the next allocation will use.
func (s *SegMem) NextSerial() uint32 { return s.nextSerial }

// growSubSeg maps a new subsegment big enough for size bytes.
func (s *SegMem) growSubSeg(size int) (*SubSeg, error) {
	pages := (size + arch.PageSize - 1) / arch.PageSize
	if pages < 1 {
		pages = 1
	}
	bytes := pages * arch.PageSize
	base := s.heap.next
	// Leave a guard page between subsegments so off-by-one address
	// arithmetic can never silently land in a neighbour.
	s.heap.next += Addr(bytes) + arch.PageSize
	if s.heap.prof.WordSize == 4 && s.heap.next > math.MaxUint32 {
		return nil, ErrAddressSpace
	}
	ss := &SubSeg{
		Seg:       s,
		Base:      base,
		Data:      make([]byte, bytes),
		protected: make([]bool, pages),
		twins:     make([][]byte, pages),
		blocks: rbtree.New[Addr, *Block](func(a, b Addr) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}),
	}
	if s.last == nil {
		s.first, s.last = ss, ss
	} else {
		s.last.Next = ss
		s.last = ss
	}
	s.heap.subsegs.Put(base, ss)
	s.addFree(base, bytes)
	return ss, nil
}

// addFree returns [addr, addr+size) to the free list, coalescing with
// neighbours.
func (s *SegMem) addFree(addr Addr, size int) {
	if size <= 0 {
		return
	}
	var prev *span
	cur := s.free
	for cur != nil && cur.addr < addr {
		prev, cur = cur, cur.next
	}
	n := &span{addr: addr, size: size, next: cur}
	if prev == nil {
		s.free = n
	} else {
		prev.next = n
	}
	// Coalesce with the successor, then the predecessor, but never
	// across subsegment boundaries (the guard page prevents spans
	// from being adjacent across subsegments anyway).
	if cur != nil && n.addr+Addr(n.size) == cur.addr {
		n.size += cur.size
		n.next = cur.next
	}
	if prev != nil && prev.addr+Addr(prev.size) == n.addr {
		prev.size += n.size
		prev.next = n.next
	}
}

// carve removes [addr, addr+size) from the free span sp.
func (s *SegMem) carve(prev, sp *span, addr Addr, size int) {
	headGap := int(addr - sp.addr)
	tailGap := sp.size - headGap - size
	switch {
	case headGap == 0 && tailGap == 0:
		if prev == nil {
			s.free = sp.next
		} else {
			prev.next = sp.next
		}
	case headGap == 0:
		sp.addr += Addr(size)
		sp.size = tailGap
	case tailGap == 0:
		sp.size = headGap
	default:
		tail := &span{addr: addr + Addr(size), size: tailGap, next: sp.next}
		sp.size = headGap
		sp.next = tail
	}
}

// blockAlign returns the starting alignment for a block of the given
// layout: at least one diff word so that run boundaries stay aligned.
func blockAlign(l *types.Layout) int {
	a := l.Align
	if a < arch.WordBytes {
		a = arch.WordBytes
	}
	return a
}

// Alloc allocates a block of count elements of layout, optionally
// named, and zeroes its contents. It corresponds to IW_malloc and
// must be called while holding the segment's write lock.
func (s *SegMem) Alloc(layout *types.Layout, count int, name string) (*Block, error) {
	b, err := s.AllocWithSerial(s.nextSerial, layout, count, name)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// AllocWithSerial allocates a block under an explicit serial number.
// The client library uses it when materializing blocks received from
// the server, whose serials were assigned remotely.
func (s *SegMem) AllocWithSerial(serial uint32, layout *types.Layout, count int, name string) (*Block, error) {
	if layout == nil {
		return nil, errors.New("mem: nil layout")
	}
	if layout.Prof != s.heap.prof {
		return nil, fmt.Errorf("mem: layout computed for %v, heap is %v", layout.Prof, s.heap.prof)
	}
	if count < 1 {
		return nil, fmt.Errorf("mem: block count %d, want >= 1", count)
	}
	if serial == 0 {
		return nil, errors.New("mem: block serial 0 is reserved")
	}
	if _, ok := s.byNumber.Get(serial); ok {
		return nil, fmt.Errorf("mem: block serial %d already in use", serial)
	}
	if name != "" {
		if _, ok := s.byName.Get(name); ok {
			return nil, fmt.Errorf("mem: %w: %q", ErrDupName, name)
		}
		// '#' delimits MIP components; a name containing it would
		// make machine-independent pointers ambiguous.
		if strings.ContainsRune(name, '#') {
			return nil, fmt.Errorf("mem: block name %q contains '#'", name)
		}
	}
	size := layout.Size * count
	align := blockAlign(layout)
	addr, ss, err := s.allocSpace(size, align)
	if err != nil {
		return nil, err
	}
	b := &Block{
		Serial:  serial,
		Name:    name,
		Addr:    addr,
		Layout:  layout,
		Count:   count,
		Pending: true,
		Sub:     ss,
	}
	s.byNumber.Put(serial, b)
	if name != "" {
		s.byName.Put(name, b)
	}
	ss.blocks.Put(addr, b)
	// Thread the address-order list using the tree neighbours.
	if _, pred, ok := ss.blocks.Floor(addr - 1); ok {
		b.prevAddr = pred
		b.nextAddr = pred.nextAddr
	} else if _, succ, ok := ss.blocks.Ceiling(addr + 1); ok {
		b.nextAddr = succ
	}
	if b.prevAddr != nil {
		b.prevAddr.nextAddr = b
	}
	if b.nextAddr != nil {
		b.nextAddr.prevAddr = b
	}
	s.blockCount++
	if serial >= s.nextSerial {
		s.nextSerial = serial + 1
	}
	// Zero the block without tripping the fault path: freshly
	// created blocks travel whole, not as twin diffs.
	if err := s.heap.RawWriteZero(addr, size); err != nil {
		return nil, fmt.Errorf("mem: zeroing new block: %w", err)
	}
	return b, nil
}

func (s *SegMem) allocSpace(size, align int) (Addr, *SubSeg, error) {
	var prev *span
	for sp := s.free; sp != nil; prev, sp = sp, sp.next {
		start := Addr(alignUp64(uint64(sp.addr), uint64(align)))
		pad := int(start - sp.addr)
		if sp.size >= pad+size {
			s.carve(prev, sp, start, size)
			ss, _, err := s.heap.resolve(start, size)
			if err != nil {
				return 0, nil, err
			}
			return start, ss, nil
		}
	}
	ss, err := s.growSubSeg(size + align)
	if err != nil {
		return 0, nil, err
	}
	start := Addr(alignUp64(uint64(ss.Base), uint64(align)))
	// Find the span covering the new subsegment and carve from it.
	var p *span
	for sp := s.free; sp != nil; p, sp = sp, sp.next {
		if sp.addr <= start && start+Addr(size) <= sp.addr+Addr(sp.size) {
			s.carve(p, sp, start, size)
			return start, ss, nil
		}
	}
	return 0, nil, errors.New("mem: internal error: fresh subsegment not in free list")
}

// Free releases a block's space and removes it from the metadata
// trees. Must be called while holding the segment's write lock.
func (s *SegMem) Free(b *Block) error {
	if b == nil {
		return errors.New("mem: free of nil block")
	}
	got, ok := s.byNumber.Get(b.Serial)
	if !ok || got != b {
		return fmt.Errorf("mem: %w: serial %d", ErrNoSuchBlock, b.Serial)
	}
	s.byNumber.Delete(b.Serial)
	if b.Name != "" {
		s.byName.Delete(b.Name)
	}
	b.Sub.blocks.Delete(b.Addr)
	if b.prevAddr != nil {
		b.prevAddr.nextAddr = b.nextAddr
	}
	if b.nextAddr != nil {
		b.nextAddr.prevAddr = b.prevAddr
	}
	b.prevAddr, b.nextAddr = nil, nil
	s.addFree(b.Addr, b.Size())
	s.blockCount--
	return nil
}

// BlockBySerial returns the block with the given serial number.
func (s *SegMem) BlockBySerial(serial uint32) (*Block, bool) {
	return s.byNumber.Get(serial)
}

// BlockByName returns the block with the given symbolic name.
func (s *SegMem) BlockByName(name string) (*Block, bool) {
	return s.byName.Get(name)
}

// Blocks calls fn for every block in serial-number order until fn
// returns false.
func (s *SegMem) Blocks(fn func(*Block) bool) {
	s.byNumber.Ascend(func(_ uint32, b *Block) bool { return fn(b) })
}

// resolve maps an address range onto its subsegment.
func (h *Heap) resolve(a Addr, n int) (*SubSeg, int, error) {
	if a == 0 {
		return nil, 0, fmt.Errorf("%w: nil address", ErrBadAddress)
	}
	_, ss, ok := h.subsegs.Floor(a)
	if !ok || a >= ss.End() {
		return nil, 0, fmt.Errorf("%w: %#x", ErrBadAddress, uint64(a))
	}
	off := int(a - ss.Base)
	if off+n > len(ss.Data) {
		return nil, 0, fmt.Errorf("%w: %#x+%d", ErrCrossesEnd, uint64(a), n)
	}
	return ss, off, nil
}

// SubSegAt returns the subsegment containing a.
func (h *Heap) SubSegAt(a Addr) (*SubSeg, bool) {
	ss, _, err := h.resolve(a, 1)
	if err != nil {
		return nil, false
	}
	return ss, true
}

// BlockAt returns the block whose extent contains a. This is the
// subseg_addr_tree + blk_addr_tree lookup that pointer swizzling and
// diff collection rely on.
func (h *Heap) BlockAt(a Addr) (*Block, bool) {
	ss, ok := h.SubSegAt(a)
	if !ok {
		return nil, false
	}
	_, b, ok := ss.blocks.Floor(a)
	if !ok || a >= b.End() {
		return nil, false
	}
	return b, true
}

func alignUp64(v, a uint64) uint64 {
	return (v + a - 1) / a * a
}
