package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"interweave/internal/protocol"
)

// Session multiplexing, client side (DESIGN.md §10, PROTOCOL.md
// "Multiplexed sessions"). A MuxConn is one TCP connection carrying
// many logical sessions; each MuxSession behaves like an independent
// client toward the server (own locks, own subscriptions, own
// at-most-once identity) at the cost of a 4-byte session ID per
// frame instead of a whole connection. This is the substrate for
// driving very large session counts — tools/loadgen holds 100k
// sessions on a handful of connections — while the full Client keeps
// the classic one-connection-per-server shape (its frames are
// session 0, byte-identical to the pre-mux format).

// Typed errors of the session-mux path. Callers match with
// errors.Is.
var (
	// ErrOverloaded: the server refused admission (session cap) or
	// shed this session as a slow consumer. Back off or spread load
	// to another server; immediate retry will meet the same answer.
	ErrOverloaded = errors.New("core: server overloaded")
	// ErrSessionLost: the logical session is gone on the server
	// (evicted, or never created). The session object is dead; open
	// a fresh session and re-validate cached state by version,
	// exactly as after a reconnect.
	ErrSessionLost = errors.New("core: session lost")
)

// MuxOptions configures DialMux.
type MuxOptions struct {
	// Dial overrides TCP dialing (tests, faultnet).
	Dial func(addr string) (net.Conn, error)
	// DialTimeout bounds the TCP dial when Dial is nil (default 10s).
	DialTimeout time.Duration
	// RPCTimeout bounds each Call round trip. Unlike the full
	// client's serial stream, mux replies are matched by request ID,
	// so a timeout fails only the one call — a late reply is
	// discarded harmlessly. Zero disables the timeout.
	RPCTimeout time.Duration
	// OnNotify, when non-nil, receives server-pushed invalidations,
	// asynchronously, with the session they are addressed to.
	OnNotify func(s *MuxSession, seg string, version uint32)
	// OnEvict, when non-nil, is told (asynchronously) when the server
	// sheds one of the connection's sessions.
	OnEvict func(s *MuxSession, reason string)
}

// MuxConn is one TCP connection multiplexing many logical sessions.
type MuxConn struct {
	conn net.Conn
	opts MuxOptions

	mu       sync.Mutex
	nextID   uint32
	nextSID  uint32
	pending  map[uint32]chan protocol.Message
	sessions map[uint32]*MuxSession
	err      error
	closed   bool
}

// MuxSession is one logical session on a MuxConn. Its methods are
// safe for concurrent use; requests from different sessions (and even
// concurrent requests of one session) are serviced concurrently by
// the server.
type MuxSession struct {
	mc  *MuxConn
	sid uint32

	mu      sync.Mutex
	lost    bool
	lostWhy error
}

// DialMux connects to a server for session-multiplexed use.
func DialMux(addr string, opts MuxOptions) (*MuxConn, error) {
	dial := opts.Dial
	if dial == nil {
		dt := opts.DialTimeout
		if dt <= 0 {
			dt = 10 * time.Second
		}
		dial = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, dt)
		}
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("core: connecting to %s: %w (%v)", addr, ErrUnavailable, err)
	}
	mc := &MuxConn{
		conn:     conn,
		opts:     opts,
		nextID:   1,
		nextSID:  1,
		pending:  make(map[uint32]chan protocol.Message),
		sessions: make(map[uint32]*MuxSession),
	}
	go mc.readLoop()
	return mc, nil
}

func (mc *MuxConn) readLoop() {
	for {
		id, msg, _, sid, err := protocol.ReadFrameMux(mc.conn)
		if err != nil {
			mc.fail(err)
			return
		}
		if id == 0 {
			mc.handlePush(sid, msg)
			continue
		}
		mc.mu.Lock()
		ch, ok := mc.pending[id]
		delete(mc.pending, id)
		mc.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// handlePush routes server-initiated frames: invalidation Notifies,
// and unsolicited ErrorReplies announcing a session eviction.
func (mc *MuxConn) handlePush(sid uint32, msg protocol.Message) {
	mc.mu.Lock()
	s := mc.sessions[sid]
	mc.mu.Unlock()
	if s == nil {
		return
	}
	switch m := msg.(type) {
	case *protocol.Notify:
		if mc.opts.OnNotify != nil {
			// Asynchronously: the callback may call back into the
			// session while the read loop must keep draining.
			go mc.opts.OnNotify(s, m.Seg, m.Version)
		}
	case *protocol.ErrorReply:
		s.markLost(fmt.Errorf("%w: evicted: %s", ErrOverloaded, m.Text))
		if mc.opts.OnEvict != nil {
			go mc.opts.OnEvict(s, m.Text)
		}
	}
}

func (mc *MuxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err == nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("core: server connection closed")
		}
		mc.err = err
	}
	mc.closed = true
	pending := mc.pending
	mc.pending = make(map[uint32]chan protocol.Message)
	mc.mu.Unlock()
	_ = mc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears the connection down; the server implicitly closes every
// session it carried.
func (mc *MuxConn) Close() error {
	mc.fail(errors.New("core: connection closed by client"))
	return nil
}

// NewSession opens a logical session: it allocates a session ID and
// introduces it to the server with a Hello (the frame that creates a
// multiplexed session server-side). An ErrOverloaded failure means
// admission control refused the session.
func (mc *MuxConn) NewSession(name, profile string) (*MuxSession, error) {
	mc.mu.Lock()
	if mc.closed {
		err := mc.err
		mc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	sid := mc.nextSID
	mc.nextSID++
	s := &MuxSession{mc: mc, sid: sid}
	mc.sessions[sid] = s
	mc.mu.Unlock()
	if _, err := s.Call(&protocol.Hello{ClientName: name, Profile: profile}); err != nil {
		mc.dropSession(sid)
		return nil, err
	}
	return s, nil
}

func (mc *MuxConn) dropSession(sid uint32) {
	mc.mu.Lock()
	delete(mc.sessions, sid)
	mc.mu.Unlock()
}

// SID returns the session's wire ID (diagnostics).
func (s *MuxSession) SID() uint32 { return s.sid }

func (s *MuxSession) markLost(why error) {
	s.mu.Lock()
	if !s.lost {
		s.lost = true
		s.lostWhy = why
	}
	s.mu.Unlock()
}

// Lost reports whether the session is known dead on the server.
func (s *MuxSession) Lost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// Call performs one RPC on the session. Server-reported ErrorReplies
// come back as errors, with CodeOverloaded mapped to ErrOverloaded
// and CodeNoSession to ErrSessionLost (both wrap the ErrorReply, so
// errCode introspection still works).
func (s *MuxSession) Call(m protocol.Message) (protocol.Message, error) {
	s.mu.Lock()
	if s.lost {
		err := s.lostWhy
		s.mu.Unlock()
		if err == nil {
			err = ErrSessionLost
		}
		return nil, err
	}
	s.mu.Unlock()
	reply, err := s.mc.call(s.sid, m)
	if err == nil {
		return reply, nil
	}
	switch errCode(err) {
	case protocol.CodeNoSession:
		err = fmt.Errorf("%w: %w", ErrSessionLost, err)
		s.markLost(err)
	case protocol.CodeOverloaded:
		err = fmt.Errorf("%w: %w", ErrOverloaded, err)
	}
	return nil, err
}

// Close ends the session on the server (best effort) and forgets it
// locally.
func (s *MuxSession) Close() error {
	s.markLost(ErrSessionLost)
	_, err := s.mc.call(s.sid, &protocol.SessionClose{})
	s.mc.dropSession(s.sid)
	return err
}

// call performs one request/reply round trip addressed to a session.
func (mc *MuxConn) call(sid uint32, m protocol.Message) (protocol.Message, error) {
	mc.mu.Lock()
	if mc.closed {
		err := mc.err
		mc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	id := mc.nextID
	mc.nextID++
	if mc.nextID == 0 {
		mc.nextID = 1
	}
	ch := make(chan protocol.Message, 1)
	mc.pending[id] = ch
	err := protocol.WriteFrameMux(mc.conn, id, m, protocol.TraceContext{}, sid)
	mc.mu.Unlock()
	if err != nil {
		mc.fail(err)
		return nil, err
	}
	var timeoutCh <-chan time.Time
	if mc.opts.RPCTimeout > 0 {
		timer := time.NewTimer(mc.opts.RPCTimeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	var reply protocol.Message
	var ok bool
	select {
	case reply, ok = <-ch:
	case <-timeoutCh:
		// Replies are matched by ID, so only this call fails; a late
		// reply finds no pending entry and is discarded.
		mc.mu.Lock()
		delete(mc.pending, id)
		mc.mu.Unlock()
		return nil, fmt.Errorf("core: %T RPC timed out after %v", m, mc.opts.RPCTimeout)
	}
	if !ok {
		mc.mu.Lock()
		err := mc.err
		mc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	if e, isErr := reply.(*protocol.ErrorReply); isErr {
		return nil, e
	}
	return reply, nil
}
