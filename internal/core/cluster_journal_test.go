package core

import (
	"testing"

	"interweave/internal/faultnet"
	"interweave/internal/protocol"
	"interweave/internal/types"
)

// TestClusterJournalWindowCatchUp: a replica that misses several
// fan-outs (marked dead, then revived) is caught up from the
// primary's journal window — the original persisted Replicate frames
// replayed in order — rather than a collected diff or a full Pull,
// while the replicate-before-acknowledge invariant of the PR 4 chaos
// suite holds: when the release that triggered the catch-up returns
// to the client, the rejoined replica already has every version and
// the at-most-once record.
func TestClusterJournalWindowCatchUp(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 0) // no heartbeat: epochs driven by hand
	seg := nodes[0].addr + "/jw"
	owner := nodeAt(t, nodes, nodes[0].node.Owner(seg))
	replica := nodeAt(t, nodes, owner.node.ReplicasOf(seg)[0])

	c := newChaosClient(t, fastRetry("journal-window"))
	h, err := c.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 2, "v")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 1, 1) // version 1, replicated while the replica is live

	// The replica "dies": its proxy drops traffic and the owner marks
	// it dead (epoch 2), re-placing the segment's replication on the
	// surviving node. The primary advances several versions the dead
	// replica never sees.
	replica.proxy.Schedule().Partition(faultnet.Up)
	if !owner.node.MarkDead(replica.addr) {
		t.Fatal("MarkDead refused")
	}
	for i := int32(2); i <= 4; i++ {
		if err := c.WLock(h); err != nil {
			t.Fatal(err)
		}
		writeVals(t, c, h, blk.Addr, i, i)
	}
	if got := h.Version(); got != 4 {
		t.Fatalf("version after missed fan-outs = %d, want 4", got)
	}

	// Rejoin handshake, by hand (the heartbeat pipeline's teach-then-
	// revive): heal the partition, teach the replica the view in which
	// it is dead, then revive it (epoch 3), returning it to placement
	// with its stale version-1 copy intact.
	replica.proxy.Schedule().Heal()
	if _, err := owner.node.Call(replica.addr, &protocol.RingPush{Ms: owner.node.Membership()}); err != nil {
		t.Fatalf("teaching the rejoining replica: %v", err)
	}
	if !owner.node.Revive(replica.addr) {
		t.Fatal("Revive refused")
	}
	if snap := replica.srv.SegmentSnapshot(seg); snap == nil || snap.Version != 1 {
		t.Fatalf("rejoined replica should still hold its stale version-1 copy, has %+v", snap)
	}

	// The next release fans out to the rejoined replica, which NACKs
	// at version 1; the primary serves the gap from its journal window
	// (versions 2..5 as the original frames), never a Pull.
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 5, 5)

	snap := replica.srv.SegmentSnapshot(seg)
	if snap == nil || snap.Version != 5 {
		t.Fatalf("rejoined replica at %+v, want version 5", snap)
	}
	if got := counterSum(owner.reg.Snapshot(), "iw_cluster_replicate_total{result=\"nack\"}"); got < 1 {
		t.Errorf("replica NACKs on the primary = %d, want >= 1", got)
	}
	if got := counterSum(owner.reg.Snapshot(), "iw_server_journal_replayed_total"); got < 4 {
		t.Errorf("journal records replayed for catch-up = %d, want >= 4 (versions 2..5)", got)
	}
	for _, n := range nodes {
		if got := counterSum(n.reg.Snapshot(), "iw_cluster_pulls_total"); got != 0 {
			t.Errorf("node %s issued %d Pulls; catch-up must come from the journal window", n.addr, got)
		}
	}
	// Replication invariant: the rejoined replica holds the
	// at-most-once record alongside the data, so it could answer a
	// Resume probe for the acked release exactly as the primary would.
	for _, d := range replica.srv.DebugSegments() {
		if d.Name == seg && d.AppliedWriters == 0 {
			t.Errorf("rejoined replica holds no applied-writer record for %q", seg)
		}
	}
	readVals(t, c, seg, "v", 5, 5)
}
