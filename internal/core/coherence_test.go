package core

import (
	"testing"
	"time"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/mem"
	"interweave/internal/types"
)

// TestDiffBasedCoherence verifies the client-visible semantics of
// diff-based coherence: updates are skipped until the cumulative
// fraction of modified primitive data units exceeds the bound.
func TestDiffBasedCoherence(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/diffpol"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	const units = 1000
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(hw, types.Int32(), units, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerate 10% of the segment being stale.
	if err := r.SetPolicy(hr, coherence.Diff(10)); err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hr); err != nil { // first fetch
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 1 {
		t.Fatalf("reader at v%d", hr.Version())
	}

	// Modify ~3% of the units (two subblocks' worth).
	writeSome := func(start, count int) {
		t.Helper()
		if err := w.WLock(hw); err != nil {
			t.Fatal(err)
		}
		for i := start; i < start+count; i++ {
			if err := w.Heap().WriteI32(blk.Addr+mem.Addr(4*i), int32(i)+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WUnlock(hw); err != nil {
			t.Fatal(err)
		}
	}
	writeSome(0, 30) // 3% < 10%
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 1 {
		t.Errorf("reader updated below the diff bound: v%d", hr.Version())
	}
	// Another 10% pushes the cumulative fraction past the bound
	// (conservative subblock accounting rounds up, which is allowed).
	writeSome(100, 100)
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 3 {
		t.Errorf("reader at v%d after bound exceeded, want 3", hr.Version())
	}
}

// TestPolicyDynamicallyTightened checks that tightening the bound at
// runtime (the paper: "x can be specified dynamically by the
// process") takes effect on the next acquisition.
func TestPolicyDynamicallyTightened(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/dyn"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(hw, types.Int32(), 8, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetPolicy(hr, coherence.Delta(10)); err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	// Advance the segment twice; Delta(10) stays stale. (The values
	// must actually change: writing back an identical value produces
	// an empty diff and no new version.)
	for i := 0; i < 2; i++ {
		if err := w.WLock(hw); err != nil {
			t.Fatal(err)
		}
		if err := w.Heap().WriteI32(blk.Addr, int32(i)+5); err != nil {
			t.Fatal(err)
		}
		if err := w.WUnlock(hw); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 1 {
		t.Fatalf("loose policy fetched: v%d", hr.Version())
	}
	// Tighten to Full: the very next read lock must update.
	if err := r.SetPolicy(hr, coherence.Full()); err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 3 {
		t.Errorf("tightened policy did not update: v%d", hr.Version())
	}
}

// TestAdaptiveUnsubscribe drives a subscribed reader through repeated
// invalidations: notifications are pure overhead for a client that is
// stale at every acquisition, so the adaptive protocol must fall back
// to polling.
func TestAdaptiveUnsubscribe(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/unsub"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(hw, types.Int32(), 4, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Reach notification mode.
	for i := 0; i < 5; i++ {
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	if !hr.s.state.Subscribed {
		r.mu.Unlock()
		t.Fatal("setup: not subscribed")
	}
	r.mu.Unlock()

	// Repeatedly: writer invalidates, reader waits for the
	// notification and read-locks while invalidated.
	for round := 0; round < 4; round++ {
		if err := w.WLock(hw); err != nil {
			t.Fatal(err)
		}
		if err := w.Heap().WriteI32(blk.Addr, int32(100+round)); err != nil {
			t.Fatal(err)
		}
		if err := w.WUnlock(hw); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			r.mu.Lock()
			inv := hr.s.state.Invalidated
			subscribed := hr.s.state.Subscribed
			r.mu.Unlock()
			if inv || !subscribed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("notification never arrived")
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	stillSubscribed := hr.s.state.Subscribed
	r.mu.Unlock()
	if stillSubscribed {
		t.Error("reader still subscribed after repeated invalidations")
	}
}

// TestNoDiffResamplesBack verifies the periodic fallback: a segment
// in no-diff mode re-samples with diffing and, when the application
// stops modifying most of the data, stays in diffing mode.
func TestNoDiffResamplesBack(t *testing.T) {
	addr := startServer(t)
	c, err := NewClient(Options{Profile: arch.AMD64(), Name: "c", NoDiffResample: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	h, err := c.Open(addr + "/rs")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), n, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	writeAll := func(seed int) {
		t.Helper()
		if err := c.WLock(h); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := c.Heap().WriteI32(blk.Addr+mem.Addr(4*i), int32(i+seed)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WUnlock(h); err != nil {
			t.Fatal(err)
		}
	}
	writeOne := func(seed int) {
		t.Helper()
		if err := c.WLock(h); err != nil {
			t.Fatal(err)
		}
		if err := c.Heap().WriteI32(blk.Addr, int32(seed)); err != nil {
			t.Fatal(err)
		}
		if err := c.WUnlock(h); err != nil {
			t.Fatal(err)
		}
	}
	writeAll(1)
	writeAll(2)
	if !h.NoDiffMode() {
		t.Fatal("did not enter no-diff mode")
	}
	// Behaviour changes to sparse writes; within NoDiffResample
	// critical sections the segment re-samples and leaves no-diff
	// mode.
	for i := 0; i < 4 && h.NoDiffMode(); i++ {
		writeOne(10 + i)
	}
	if h.NoDiffMode() {
		t.Fatal("never re-sampled out of no-diff mode")
	}
	// And sparse updates now travel as small diffs again.
	writeOne(99)
	if st := h.LastCollectStats(); st.Units > 64 {
		t.Errorf("sparse update sent %d units", st.Units)
	}
}
