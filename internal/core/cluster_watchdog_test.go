package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"interweave/internal/types"
)

// TestClusterLockOrderingWatchdog is a deadlock watchdog for the
// per-segment locking hierarchy (DESIGN.md §8): it runs, concurrently
// and repeatedly,
//
//   - two transaction clients committing over overlapping segment
//     sets ({t0,t1} and {t2,t1}, deliberately presented in opposite
//     orders) — each TxCommit holds several segment locks at once,
//     acquired in ascending-name order;
//   - a migration client ping-ponging a fourth segment between nodes
//     — each Migrate holds that segment's write-lock barrier while
//     shipping a snapshot, and each success bumps the cluster epoch,
//     so every node's epoch sweep walks the whole segment registry
//     taking each segment lock in turn;
//   - a plain writer on the migrating segment, draining through the
//     barrier and rerouting after every move.
//
// Any lock-ordering violation between those three paths deadlocks
// some worker forever; the watchdog converts that hang into a test
// failure instead of a suite timeout. The bound is generous for a
// slow 1-CPU -race runner — the workload itself finishes in seconds.
func TestClusterLockOrderingWatchdog(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 0) // epochs move only via Migrate
	const (
		txIters   = 6
		migRounds = 6
	)

	// Three tx segments with a common owner (TxCommit requires one
	// server), found by probing the hash ring.
	byOwner := make(map[string][]string)
	var txSegs []string
	for i := 0; len(txSegs) < 3; i++ {
		if i > 1000 {
			t.Fatal("setup: no owner accumulated 3 segments in 1000 probes")
		}
		name := fmt.Sprintf("%s/wd-tx%d", nodes[0].addr, i)
		o := nodes[0].node.Owner(name)
		byOwner[o] = append(byOwner[o], name)
		if len(byOwner[o]) == 3 {
			txSegs = byOwner[o]
		}
	}

	setup := newChaosClient(t, fastRetry("wd-setup"))
	handles := make([]*Segment, 3)
	for i, name := range txSegs {
		h, err := setup.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	if err := setup.TxLock(handles...); err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		if _, err := setup.Alloc(h, types.Int32(), 1, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.TxCommit(handles...); err != nil {
		t.Fatal(err)
	}

	// The migrating segment, seeded with one int block.
	migSeg := nodes[0].addr + "/wd-mig"
	migOwner := nodeAt(t, nodes, nodes[0].node.Owner(migSeg))
	var targets []*chaosNode
	for _, n := range nodes {
		if n != migOwner {
			targets = append(targets, n)
		}
	}
	mh, err := setup.Open(migSeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WLock(mh); err != nil {
		t.Fatal(err)
	}
	blk, err := setup.Alloc(mh, types.Int32(), 1, "v")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, setup, mh, blk.Addr, 0)

	// txWorker increments block x of both segments in one transaction,
	// txIters times. Overlap on the shared segment plus the flipped
	// argument order makes TxLock's canonical sort the only thing
	// standing between the two workers and a client-level deadlock.
	txWorker := func(name, segA, segB string) error {
		c, err := NewClient(fastRetry(name))
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		ha, err := c.Open(segA)
		if err != nil {
			return err
		}
		hb, err := c.Open(segB)
		if err != nil {
			return err
		}
		for i := 0; i < txIters; i++ {
			if err := appRetry(func() error {
				if err := c.TxLock(ha, hb); err != nil {
					return err
				}
				for _, h := range []*Segment{ha, hb} {
					blk, ok := h.Mem().BlockByName("x")
					if !ok {
						_ = c.WUnlock(ha)
						_ = c.WUnlock(hb)
						return fmt.Errorf("%s: block x missing", name)
					}
					v, err := c.Heap().ReadI32(blk.Addr)
					if err == nil {
						err = c.Heap().WriteI32(blk.Addr, v+1)
					}
					if err != nil {
						_ = c.WUnlock(ha)
						_ = c.WUnlock(hb)
						return err
					}
				}
				return c.TxCommit(ha, hb)
			}); err != nil {
				return fmt.Errorf("%s iteration %d: %w", name, i, err)
			}
		}
		return nil
	}

	errs := make(chan error, 4)
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { defer wg.Done(); errs <- txWorker("wd-tx-ab", txSegs[0], txSegs[1]) }()
	go func() { defer wg.Done(); errs <- txWorker("wd-tx-cb", txSegs[2], txSegs[1]) }()
	go func() { // migrator: every successful move bumps the epoch
		defer wg.Done()
		c, err := NewClient(fastRetry("wd-mig"))
		if err != nil {
			errs <- err
			return
		}
		defer func() { _ = c.Close() }()
		for i := 0; i < migRounds; i++ {
			target := targets[i%2].addr
			if err := appRetry(func() error { return c.Migrate(migSeg, target) }); err != nil {
				errs <- fmt.Errorf("migration %d to %s: %w", i, target, err)
				return
			}
		}
		errs <- nil
	}()
	go func() { // writer chasing the migrating segment through the barrier
		defer wg.Done()
		c, err := NewClient(fastRetry("wd-writer"))
		if err != nil {
			errs <- err
			return
		}
		defer func() { _ = c.Close() }()
		h, err := c.Open(migSeg)
		if err != nil {
			errs <- err
			return
		}
		for i := 1; i <= migRounds; i++ {
			v := int32(i)
			if err := appRetry(func() error {
				if err := c.WLock(h); err != nil {
					return err
				}
				blk, ok := h.Mem().BlockByName("v")
				if !ok {
					_ = c.WUnlock(h)
					return fmt.Errorf("writer: block v missing")
				}
				if err := c.Heap().WriteI32(blk.Addr, v); err != nil {
					_ = c.WUnlock(h)
					return err
				}
				return c.WUnlock(h)
			}); err != nil {
				errs <- fmt.Errorf("writer round %d: %w", i, err)
				return
			}
		}
		errs <- nil
	}()

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("watchdog: Migrate/epoch-sweep/TxCommit workload wedged for 60s — lock-ordering deadlock")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if t.Failed() {
		return
	}

	// Exactly txIters increments from each worker landed on its pair:
	// the shared segment saw both.
	want := []int32{txIters, 2 * txIters, txIters}
	for i, h := range handles {
		if err := appRetry(func() error { return setup.RLock(h) }); err != nil {
			t.Fatal(err)
		}
		blk, ok := h.Mem().BlockByName("x")
		if !ok {
			t.Fatalf("%s: block x missing after workload", txSegs[i])
		}
		v, err := setup.Heap().ReadI32(blk.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := setup.RUnlock(h); err != nil {
			t.Fatal(err)
		}
		if v != want[i] {
			t.Errorf("%s: counter = %d, want %d", txSegs[i], v, want[i])
		}
	}

	// The migrations really moved ownership and advanced the epoch.
	last := targets[(migRounds-1)%2]
	if got := last.node.Owner(migSeg); got != last.addr {
		t.Errorf("final owner of %q = %s, want %s", migSeg, got, last.addr)
	}
	if e := last.node.Epoch(); e <= 1 {
		t.Errorf("final epoch = %d, want > 1 (migrations must bump it)", e)
	}
	var migrated uint64
	for _, n := range nodes {
		migrated += counterSum(n.reg.Snapshot(), "iw_cluster_migrations_total")
	}
	if migrated < migRounds {
		t.Errorf("cluster-wide migrations = %d, want >= %d", migrated, migRounds)
	}

	// The writer's last value survived the final move.
	r := newChaosClient(t, fastRetry("wd-reader"))
	if err := r.RefreshRing(last.addr); err != nil {
		t.Fatal(err)
	}
	readVals(t, r, migSeg, "v", int32(migRounds))
}
