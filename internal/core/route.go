package core

import (
	"errors"
	"fmt"

	"interweave/internal/cluster"
	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Cluster-aware request routing (DESIGN.md §7). Segment names embed a
// "home" server address, but in cluster mode the consistent-hash ring
// may place the segment on any member. A non-owning server answers
// with a Redirect carrying the current membership; the client follows
// it transparently, caches the learned route per segment, and adopts
// the membership so later failures can be rerouted without a server
// telling it where to go.

// Errors surfaced by cluster routing.
var (
	// ErrRedirectLoop reports a redirect chain that did not converge
	// on an owner within the hop budget (or pointed straight back at
	// the server that issued it).
	ErrRedirectLoop = errors.New("core: redirect loop")
	// ErrBadRedirect reports a redirect naming an owner that is not a
	// live member of the cluster membership it carried — a server bug
	// or a URL/membership mismatch the client refuses to chase.
	ErrBadRedirect = errors.New("core: redirect to address outside cluster membership")
	// ErrUnavailable reports that the segment's server (after any
	// rerouting) could not be reached.
	ErrUnavailable = errors.New("core: server unavailable")
)

// maxRedirectHops bounds one logical operation's redirect chain. With
// epoch-monotonic membership adoption, servers sharing an epoch agree
// on every owner, so a chain only grows past one hop when it crosses
// an epoch bump; four hops is far beyond any reachable configuration
// churn and exists purely to turn a routing bug into a clean error.
const maxRedirectHops = 4

// addrFor resolves the server address for a segment: a cached route
// learned from redirects wins over the address embedded in the name.
// Caller holds c.mu.
func (c *Client) addrFor(segName string) (string, error) {
	if a, ok := c.routes[segName]; ok {
		return a, nil
	}
	return serverAddrOf(segName)
}

// adoptMembership installs a cluster membership if it is newer than
// the cached one (epoch-monotonic: stale gossip can never roll the
// client's view backwards). Caller holds c.mu.
func (c *Client) adoptMembership(ms protocol.Membership) {
	if c.ms != nil && ms.Epoch <= c.ms.Epoch {
		return
	}
	cp := ms.Clone()
	c.ms = &cp
	c.ring = cluster.BuildRing(cp)
}

// followRedirect processes one Redirect reply: validate the named
// owner against the carried membership, guard against loops, adopt
// the membership, and cache the new route. from is the server the
// redirect came from — which may differ from the cached route when
// the cache moved under an open connection (e.g. a Migrate updated
// it while the segment still talked to the old owner). hops counts
// the chain across the caller's whole retry loop. Caller holds c.mu.
func (c *Client) followRedirect(segName, from string, red *protocol.Redirect, hops *int) error {
	*hops++
	if c.ins != nil {
		c.ins.redirects.Inc()
	}
	c.trace(obs.Event{Name: "redirect", Seg: segName, RPC: from + "->" + red.Owner})
	if *hops > maxRedirectHops {
		return fmt.Errorf("%w: %q not owned after %d hops", ErrRedirectLoop, segName, maxRedirectHops)
	}
	if !memberAlive(red.Ms, red.Owner) {
		return fmt.Errorf("%w: %q redirected to %q", ErrBadRedirect, segName, red.Owner)
	}
	if red.Owner == from {
		return fmt.Errorf("%w: %s redirected %q to itself", ErrRedirectLoop, from, segName)
	}
	if c.ms != nil && red.Ms.Epoch < c.ms.Epoch {
		// The redirecting server's view is older than ours. Trust our
		// own ring when it disagrees; the hop bound still terminates
		// the pathological case of every view being wrong.
		if own := c.ring.Owner(segName); own != "" && own != from {
			c.routes[segName] = own
			return nil
		}
	}
	c.adoptMembership(red.Ms)
	c.routes[segName] = red.Owner
	return nil
}

// memberAlive reports whether addr is a live member of ms.
func memberAlive(ms protocol.Membership, addr string) bool {
	for _, m := range ms.Members {
		if m.Addr == addr {
			return !m.Dead
		}
	}
	return false
}

// rerouteSeg repoints a segment's route after a failure reaching its
// current server: it polls the other cluster members for a newer
// membership and recomputes the owner from the resulting ring. A
// no-op for clients that never learned a membership (single-server
// deployments). Reports whether the route changed. Caller holds c.mu.
func (c *Client) rerouteSeg(segName string) bool {
	if c.ms == nil {
		return false
	}
	failed, err := c.addrFor(segName)
	if err != nil {
		return false
	}
	c.refreshMembership(failed)
	if c.ring == nil {
		return false
	}
	owner := c.ring.Owner(segName)
	if owner == "" || owner == failed {
		return false
	}
	c.routes[segName] = owner
	if c.ins != nil {
		c.ins.reroutes.Inc()
	}
	c.trace(obs.Event{Name: "reroute", Seg: segName, RPC: failed + "->" + owner})
	return true
}

// refreshMembership asks other live members (skipping the failed one)
// for the current membership, adopting the first answer. The ring a
// survivor returns after failure detection has the dead node marked
// and the epoch bumped, which is exactly what rerouteSeg needs.
// Caller holds c.mu; the dials inside connTo release it.
func (c *Client) refreshMembership(skip string) {
	ms := c.ms
	for _, m := range ms.Members {
		if m.Dead || m.Addr == skip {
			continue
		}
		sc, err := c.connTo(m.Addr)
		if err != nil {
			continue
		}
		reply, err := sc.callT(&protocol.RingGet{HaveEpoch: ms.Epoch}, c.opts.RPCTimeout, protocol.TraceContext{})
		if err != nil {
			continue
		}
		rr, ok := reply.(*protocol.RingReply)
		if !ok {
			continue
		}
		c.adoptMembership(rr.Ms)
		return
	}
}

// RefreshRing fetches the cluster membership from the server at addr
// and adopts it if newer than the cached view. Clients normally learn
// the membership from the first Redirect they follow; RefreshRing
// seeds it explicitly, which lets a client whose first server is also
// the owner of everything it opens survive that server's death.
// Calling it against a non-clustered server returns the server's
// error.
func (c *Client) RefreshRing(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sc, err := c.connTo(addr)
	if err != nil {
		return err
	}
	var have uint64
	if c.ms != nil {
		have = c.ms.Epoch
	}
	reply, err := sc.callT(&protocol.RingGet{HaveEpoch: have}, c.opts.RPCTimeout, protocol.TraceContext{})
	if err != nil {
		return err
	}
	rr, ok := reply.(*protocol.RingReply)
	if !ok {
		return fmt.Errorf("core: unexpected reply %T to ring fetch", reply)
	}
	c.adoptMembership(rr.Ms)
	return nil
}

// Migrate asks the cluster to move segName to the server at target.
// The request routes to the segment's current owner like any other
// segment RPC; the owner drains in-flight writers behind a write-lock
// barrier, ships a snapshot to the target, and pins the new owner in
// the membership (DESIGN.md §7.4). Against a non-clustered server the
// server's error is returned.
func (c *Client) Migrate(segName, target string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := c.tracer.Start("client.Migrate")
	defer sp.End()
	reply, err := c.callRetry(segName, &protocol.Migrate{Seg: segName, Target: target}, sp)
	if err != nil {
		sp.Error(err)
		return fmt.Errorf("core: migrating %q: %w", segName, err)
	}
	if _, ok := reply.(*protocol.Ack); !ok {
		return fmt.Errorf("core: unexpected reply %T to migrate", reply)
	}
	c.routes[segName] = target
	return nil
}

// Forward issues a raw protocol message against the server currently
// routed for segName, with the client's full routing stack behind it:
// the redirect-learned route (or the URL's home server) picks the
// target, Redirect replies are followed and cached, transport failures
// of retryable RPCs are retried with backoff, and reroutes consult the
// ring. The reply is returned as-is; server-reported errors come back
// as *protocol.ErrorReply in the error chain.
//
// This is the proxy tier's upstream primitive (DESIGN.md §11): a proxy
// relays downstream WriteLock/WriteUnlock/TxCommit frames verbatim and
// pulls mirror diffs with ReadLock, without materialising core segment
// state for them. Note the retry semantics are the same as a direct
// client's: WriteUnlock and TxCommit get at most one send per call.
func (c *Client) Forward(segName string, m protocol.Message) (protocol.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("core: client closed")
	}
	return c.callRetry(segName, m, nil)
}

// SeedRoute pins the route for segName to addr, as if a redirect had
// taught it. A proxy uses this to aim a segment at its configured
// upstream — which may be another proxy, not the owner embedded in the
// segment URL — before the first Forward; later redirects and reroutes
// overwrite it normally.
func (c *Client) SeedRoute(segName, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routes[segName] = addr
}

// RouteTo reports the cached route for segName, or "" when none is
// cached (the next request would fall back to the segment URL's home
// server). Lets a proxy detect that rerouting abandoned its seeded
// upstream and decide whether to re-seed.
func (c *Client) RouteTo(segName string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routes[segName]
}

// ClusterEpoch returns the epoch of the cached cluster membership, or
// zero when the client has never seen one.
func (c *Client) ClusterEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ms == nil {
		return 0
	}
	return c.ms.Epoch
}
