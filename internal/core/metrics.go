package core

import (
	"fmt"
	"strings"
	"time"

	"interweave/internal/obs"
	"interweave/internal/protocol"
)

// Client-side metric names, documented metric-by-metric in
// OBSERVABILITY.md. Every one maps to a paper figure or DESIGN.md
// section; the mapping is part of the contract and link-checked docs
// keep it honest.
const (
	mRPCLatency     = "iw_client_rpc_latency_seconds"
	mRPCRetries     = "iw_client_rpc_retries_total"
	mRPCErrors      = "iw_client_rpc_transport_errors_total"
	mLockWait       = "iw_client_lock_wait_seconds"
	mDiffCollect    = "iw_client_diff_collect_seconds"
	mDiffApply      = "iw_client_diff_apply_seconds"
	mDiffBytes      = "iw_client_diff_bytes_total"
	mDiffSize       = "iw_client_diff_size_bytes"
	mDiffUnitsSent  = "iw_client_diff_units_sent_total"
	mDiffUnitsFull  = "iw_client_diff_units_full_total"
	mApplyUnits     = "iw_client_apply_units_total"
	mDegradedReads  = "iw_client_degraded_reads_total"
	mWriteConflicts = "iw_client_write_conflicts_total"
	mDials          = "iw_client_dials_total"
	mNoDiffReleases = "iw_client_nodiff_releases_total"
	mVersionChecks  = "iw_client_version_checks_total"
	mRedirects      = "iw_client_redirects_total"
	mReroutes       = "iw_client_reroutes_total"
)

// clientInstruments holds every metric handle a Client updates. It is
// created once in NewClient when Options.Metrics is set; a nil
// *clientInstruments is the disabled state, and every instrumentation
// site is gated on that nil check so a metrics-less client takes no
// time.Now calls and no atomic traffic.
type clientInstruments struct {
	reg *obs.Registry

	// Per-RPC-kind families, filled lazily under Client.mu (all RPC
	// paths already hold it).
	rpcLatency map[string]*obs.Histogram
	rpcRetries map[string]*obs.Counter
	rpcErrors  map[string]*obs.Counter

	lockWaitRead  *obs.Histogram
	lockWaitWrite *obs.Histogram

	diffCollect   *obs.Histogram
	diffApply     *obs.Histogram
	diffSize      *obs.Histogram
	diffBytes     *obs.Counter
	diffUnitsSent *obs.Counter
	diffUnitsFull *obs.Counter
	applyUnits    *obs.Counter

	degradedReads  *obs.Counter
	writeConflicts *obs.Counter
	dials          *obs.Counter
	noDiffReleases *obs.Counter
	versionFresh   *obs.Counter
	versionUpdate  *obs.Counter
	redirects      *obs.Counter
	reroutes       *obs.Counter
}

func newClientInstruments(reg *obs.Registry) *clientInstruments {
	return &clientInstruments{
		reg:        reg,
		rpcLatency: make(map[string]*obs.Histogram),
		rpcRetries: make(map[string]*obs.Counter),
		rpcErrors:  make(map[string]*obs.Counter),
		lockWaitRead: reg.Histogram(mLockWait,
			"Time to acquire a segment lock, local gate plus server round trip.",
			obs.DurationBuckets, obs.L("mode", "read")),
		lockWaitWrite: reg.Histogram(mLockWait,
			"Time to acquire a segment lock, local gate plus server round trip.",
			obs.DurationBuckets, obs.L("mode", "write")),
		diffCollect: reg.Histogram(mDiffCollect,
			"Wall time of diff collection at write-lock release (Figure 5, cl collect).",
			obs.DurationBuckets),
		diffApply: reg.Histogram(mDiffApply,
			"Wall time of applying an incoming diff to the cached copy (Figure 5, cl apply).",
			obs.DurationBuckets),
		diffSize: reg.Histogram(mDiffSize,
			"Per-release wire payload size of outgoing diffs.",
			obs.SizeBuckets),
		diffBytes: reg.Counter(mDiffBytes,
			"Wire payload bytes of outgoing diff runs (Figure 7 bandwidth)."),
		diffUnitsSent: reg.Counter(mDiffUnitsSent,
			"Primitive units shipped in outgoing diffs."),
		diffUnitsFull: reg.Counter(mDiffUnitsFull,
			"Primitive units a full transfer would have shipped at each release; sent/full is the diffing savings."),
		applyUnits: reg.Counter(mApplyUnits,
			"Primitive units written by incoming diff application."),
		degradedReads: reg.Counter(mDegradedReads,
			"Read locks granted from the cache because the server was unreachable under relaxed coherence."),
		writeConflicts: reg.Counter(mWriteConflicts,
			"Write releases abandoned after losing a conflict during reconnect."),
		dials: reg.Counter(mDials,
			"Server connections dialed, including reconnects after failures."),
		noDiffReleases: reg.Counter(mNoDiffReleases,
			"Write releases transmitted in no-diff (whole block) mode (Section 3.3)."),
		versionFresh: reg.Counter(mVersionChecks,
			"Read-lock freshness checks against the server, by outcome.",
			obs.L("result", "fresh")),
		versionUpdate: reg.Counter(mVersionChecks,
			"Read-lock freshness checks against the server, by outcome.",
			obs.L("result", "update")),
		redirects: reg.Counter(mRedirects,
			"Redirect replies followed to a segment's ring owner."),
		reroutes: reg.Counter(mReroutes,
			"Segment routes repointed at a new owner after failing to reach the old one."),
	}
}

// rpcName is the metric label for a protocol message: the type's
// short name, e.g. "ReadLock".
func rpcName(m protocol.Message) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", m), "*protocol.")
}

// latency returns the latency histogram for one RPC kind. Callers
// hold Client.mu, which also serializes the lazy map fill.
func (ci *clientInstruments) latency(rpc string) *obs.Histogram {
	h, ok := ci.rpcLatency[rpc]
	if !ok {
		h = ci.reg.Histogram(mRPCLatency,
			"Round-trip latency of client RPCs by protocol message kind.",
			obs.DurationBuckets, obs.L("rpc", rpc))
		ci.rpcLatency[rpc] = h
	}
	return h
}

// retries returns the retry counter for one RPC kind (caller holds
// Client.mu).
func (ci *clientInstruments) retries(rpc string) *obs.Counter {
	c, ok := ci.rpcRetries[rpc]
	if !ok {
		c = ci.reg.Counter(mRPCRetries,
			"Transport-failed RPC attempts that were retried after reconnect/backoff.",
			obs.L("rpc", rpc))
		ci.rpcRetries[rpc] = c
	}
	return c
}

// transportErrors returns the transport-error counter for one RPC
// kind (caller holds Client.mu).
func (ci *clientInstruments) transportErrors(rpc string) *obs.Counter {
	c, ok := ci.rpcErrors[rpc]
	if !ok {
		c = ci.reg.Counter(mRPCErrors,
			"RPC attempts that failed at the transport layer (connection death or timeout).",
			obs.L("rpc", rpc))
		ci.rpcErrors[rpc] = c
	}
	return c
}

// trace emits a structured event to the Options.Trace hook, if any,
// stamping the monotonic timestamp unless the emitter already did.
// The clock read happens only when a hook is installed.
func (c *Client) trace(ev obs.Event) {
	if c.traceFn != nil {
		if ev.At.IsZero() {
			ev.At = time.Now()
		}
		c.traceFn(ev)
	}
}
