package core

import (
	"testing"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/types"
)

// TestCrossServerPointers places two segments on two different
// servers and links them with a pointer: MIPs carry the full server
// address, so following the pointer transparently reaches the second
// server ("even if embedded pointers refer to data in other
// segments", Section 2.1 — here, other segments on other servers).
func TestCrossServerPointers(t *testing.T) {
	addr1 := startServer(t)
	addr2 := startServer(t)
	segA := addr1 + "/a"
	segB := addr2 + "/b"
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}

	w := newTestClient(t, arch.AMD64(), "w")
	hb, err := w.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hb); err != nil {
		t.Fatal(err)
	}
	target, err := w.Alloc(hb, types.Int32(), 1, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(target.Addr, 4096); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hb); err != nil {
		t.Fatal(err)
	}

	ha, err := w.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(ha); err != nil {
		t.Fatal(err)
	}
	pblk, err := w.Alloc(ha, pi, 1, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WritePtr(pblk.Addr, target.Addr); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(ha); err != nil {
		t.Fatal(err)
	}

	// The MIP stored at server 1 names server 2.
	mip, err := w.PtrToMIP(target.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if mip != segB+"#t" {
		t.Fatalf("cross-server MIP = %q", mip)
	}

	// A second client opens only segment A; the pointer pulls in the
	// shell of the segment on the other server.
	r := newTestClient(t, arch.Sparc(), "r")
	hra, err := r.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hra); err != nil {
		t.Fatal(err)
	}
	pb, ok := hra.Mem().BlockByName("p")
	if !ok {
		t.Fatal("pointer block missing")
	}
	tgt, err := r.Heap().ReadPtr(pb.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hra); err != nil {
		t.Fatal(err)
	}
	if tgt == 0 {
		t.Fatal("cross-server pointer is nil")
	}
	hrb, err := r.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hrb); err != nil {
		t.Fatal(err)
	}
	v, err := r.Heap().ReadI32(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hrb); err != nil {
		t.Fatal(err)
	}
	if v != 4096 {
		t.Errorf("cross-server value = %d, want 4096", v)
	}
	// Transactions across servers are rejected cleanly.
	if err := r.TxLock(hra, hrb); err != nil {
		t.Fatal(err)
	}
	if err := r.TxCommit(hra, hrb); err == nil {
		t.Error("cross-server transaction accepted")
	}
	_ = r.WUnlock(hra)
	_ = r.WUnlock(hrb)
}

func TestClientMiscErrors(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	// Malformed segment URLs.
	for _, bad := range []string{"", "nopath", "/leading", "trailing/"} {
		if _, err := c.Open(bad); err == nil {
			t.Errorf("Open(%q) succeeded", bad)
		}
	}
	// Unreachable server.
	if _, err := c.Open("127.0.0.1:1/seg"); err == nil {
		t.Error("Open against a closed port succeeded")
	}
	// Operations after Close fail cleanly.
	h, err := c.Open(addr + "/m")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := c.WLock(h); err == nil {
		t.Error("WLock after Close succeeded")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Options{DefaultPolicy: coherence.Policy{Model: 99}}); err == nil {
		t.Error("invalid default policy accepted")
	}
}

func TestEvict(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/ev")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 4, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Heap().WriteI32(blk.Addr, 77); err != nil {
		t.Fatal(err)
	}
	// Eviction while locked is refused.
	if err := c.Evict(h); err == nil {
		t.Error("evicted a write-locked segment")
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(h); err != nil {
		t.Fatal(err)
	}
	// The cached copy is gone.
	if _, err := c.Heap().ReadI32(blk.Addr); err == nil {
		t.Error("evicted memory still readable")
	}
	// Re-opening refetches the data from the server.
	h2, err := c.Open(addr + "/ev")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RLock(h2); err != nil {
		t.Fatal(err)
	}
	b2, ok := h2.Mem().BlockByName("a")
	if !ok {
		t.Fatal("block missing after re-open")
	}
	if v, _ := c.Heap().ReadI32(b2.Addr); v != 77 {
		t.Errorf("refetched value = %d", v)
	}
	if err := c.RUnlock(h2); err != nil {
		t.Fatal(err)
	}
	// With a second cached segment, eviction is refused.
	if _, err := c.Open(addr + "/other"); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(h2); err == nil {
		t.Error("evicted while another segment is cached")
	}
}
