package core

import (
	"net"
	"testing"
	"time"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
)

// startServer launches an InterWeave server on a loopback port and
// returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

func newTestClient(t *testing.T, prof *arch.Profile, name string) *Client {
	t.Helper()
	c, err := NewClient(Options{Profile: prof, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// nodeType builds the paper's node_t.
func nodeType(t *testing.T) *types.Type {
	t.Helper()
	n := types.NewStruct("node_t")
	next, err := types.PointerTo(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFields(
		types.Field{Name: "key", Type: types.Int32()},
		types.Field{Name: "next", Type: next},
	); err != nil {
		t.Fatal(err)
	}
	return n
}

// list is a tiny typed view over the Figure 1 linked list.
type list struct {
	c    *Client
	h    *Segment
	node *types.Layout
}

func newList(t *testing.T, c *Client, h *Segment, nt *types.Type) *list {
	t.Helper()
	l, err := types.Of(nt, c.Profile())
	if err != nil {
		t.Fatal(err)
	}
	return &list{c: c, h: h, node: l}
}

func (l *list) keyAddr(n mem.Addr) mem.Addr {
	f, _ := l.node.Field("key")
	return n + mem.Addr(f.ByteOff)
}

func (l *list) nextAddr(n mem.Addr) mem.Addr {
	f, _ := l.node.Field("next")
	return n + mem.Addr(f.ByteOff)
}

// insert prepends a key after the header node, as list_insert does.
func (l *list) insert(t *testing.T, head mem.Addr, nt *types.Type, key int32) {
	t.Helper()
	if err := l.c.WLock(l.h); err != nil {
		t.Fatal(err)
	}
	blk, err := l.c.Alloc(l.h, nt, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	h := l.c.Heap()
	if err := h.WriteI32(l.keyAddr(blk.Addr), key); err != nil {
		t.Fatal(err)
	}
	first, err := h.ReadPtr(l.nextAddr(head))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePtr(l.nextAddr(blk.Addr), first); err != nil {
		t.Fatal(err)
	}
	if err := h.WritePtr(l.nextAddr(head), blk.Addr); err != nil {
		t.Fatal(err)
	}
	if err := l.c.WUnlock(l.h); err != nil {
		t.Fatal(err)
	}
}

// keys walks the list under a read lock.
func (l *list) keys(t *testing.T, head mem.Addr) []int32 {
	t.Helper()
	if err := l.c.RLock(l.h); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.c.RUnlock(l.h); err != nil {
			t.Fatal(err)
		}
	}()
	var out []int32
	h := l.c.Heap()
	p, err := h.ReadPtr(l.nextAddr(head))
	if err != nil {
		t.Fatal(err)
	}
	for p != 0 {
		k, err := h.ReadI32(l.keyAddr(p))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, k)
		p, err = h.ReadPtr(l.nextAddr(p))
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSharedLinkedListHeterogeneous reproduces the paper's Figure 1
// program: one client builds a shared linked list, another — on a
// different simulated architecture — maps it through a MIP and
// searches it.
func TestSharedLinkedListHeterogeneous(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/list"
	nt := nodeType(t)

	// Writer on big-endian 32-bit.
	cw := newTestClient(t, arch.Sparc(), "writer")
	hw, err := cw.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Create the unused header node.
	if err := cw.WLock(hw); err != nil {
		t.Fatal(err)
	}
	headBlk, err := cw.Alloc(hw, nt, 1, "head")
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WUnlock(hw); err != nil {
		t.Fatal(err)
	}
	lw := newList(t, cw, hw, nt)
	for _, k := range []int32{10, 20, 30} {
		lw.insert(t, headBlk.Addr, nt, k)
	}
	if got := lw.keys(t, headBlk.Addr); len(got) != 3 || got[0] != 30 || got[2] != 10 {
		t.Fatalf("writer's list = %v", got)
	}

	// Reader on little-endian 64-bit, bootstrapping via MIP.
	cr := newTestClient(t, arch.Alpha(), "reader")
	headAddr, err := cr.MIPToPtr(segName + "#head")
	if err != nil {
		t.Fatal(err)
	}
	hr := openExisting(t, cr, segName)
	lr := newList(t, cr, hr, nt)
	got := lr.keys(t, headAddr)
	if len(got) != 3 || got[0] != 30 || got[1] != 20 || got[2] != 10 {
		t.Fatalf("reader's list = %v", got)
	}

	// Reader inserts; writer observes.
	lr.insert(t, headAddr, nt, 40)
	if got := lw.keys(t, headBlk.Addr); len(got) != 4 || got[0] != 40 {
		t.Fatalf("writer after reader insert = %v", got)
	}
}

func openExisting(t *testing.T, c *Client, name string) *Segment {
	t.Helper()
	h, err := c.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLockDiscipline(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(h, types.Int32(), 1, ""); err == nil {
		t.Error("Alloc without write lock succeeded")
	}
	if err := c.WUnlock(h); err == nil {
		t.Error("WUnlock without lock succeeded")
	}
	if err := c.RUnlock(h); err == nil {
		t.Error("RUnlock without lock succeeded")
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(h, types.Int32(), 4, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Free(h, b); err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	// Block created and freed in one critical section never reached
	// the server.
	if got := h.Version(); got != 0 {
		t.Errorf("version = %d after no-op section, want 0", got)
	}
}

func TestWriteLockMutualExclusion(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/ctr"
	c1 := newTestClient(t, arch.AMD64(), "c1")
	c2 := newTestClient(t, arch.X86(), "c2")
	h1, err := c1.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.WLock(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Alloc(h1, types.Int32(), 1, "ctr"); err != nil {
		t.Fatal(err)
	}
	if err := c1.WUnlock(h1); err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Open(segName)
	if err != nil {
		t.Fatal(err)
	}

	// Interleaved increments from both clients; the total must be
	// exact if write locks serialize.
	const perClient = 25
	incr := func(c *Client, h *Segment) error {
		if err := c.WLock(h); err != nil {
			return err
		}
		blk, _ := h.Mem().BlockByName("ctr")
		v, err := c.Heap().ReadI32(blk.Addr)
		if err != nil {
			return err
		}
		if err := c.Heap().WriteI32(blk.Addr, v+1); err != nil {
			return err
		}
		return c.WUnlock(h)
	}
	errs := make(chan error, 2)
	for _, pair := range []struct {
		c *Client
		h *Segment
	}{{c1, h1}, {c2, h2}} {
		pair := pair
		go func() {
			for i := 0; i < perClient; i++ {
				if err := incr(pair.c, pair.h); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.RLock(h1); err != nil {
		t.Fatal(err)
	}
	blk, _ := h1.Mem().BlockByName("ctr")
	v, err := c1.Heap().ReadI32(blk.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.RUnlock(h1); err != nil {
		t.Fatal(err)
	}
	if v != 2*perClient {
		t.Errorf("counter = %d, want %d", v, 2*perClient)
	}
}

func TestDeltaCoherenceSkipsUpdates(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/d"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc(hw, types.Int32(), 16, "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetPolicy(hr, coherence.Delta(2)); err != nil {
		t.Fatal(err)
	}
	// First read: fetch v1.
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 1 {
		t.Fatalf("reader at v%d, want 1", hr.Version())
	}
	// Writer advances to v3: staleness 2, still within Delta(2).
	writeOnce := func() {
		t.Helper()
		if err := w.WLock(hw); err != nil {
			t.Fatal(err)
		}
		blk, _ := hw.Mem().BlockByName("a")
		if err := w.Heap().WriteI32(blk.Addr, int32(hw.Version())); err != nil {
			t.Fatal(err)
		}
		if err := w.WUnlock(hw); err != nil {
			t.Fatal(err)
		}
	}
	writeOnce() // v2
	writeOnce() // v3
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 1 {
		t.Errorf("reader updated at staleness 2 under Delta(2): v%d", hr.Version())
	}
	writeOnce() // v4: staleness 3 > 2
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 4 {
		t.Errorf("reader at v%d after bound exceeded, want 4", hr.Version())
	}
}

func TestTemporalCoherenceAvoidsCommunication(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/t"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc(hw, types.Int32(), 4, "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetPolicy(hr, coherence.Temporal(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	// Writer advances; reader within its window must not update.
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, _ := hw.Mem().BlockByName("a")
	if err := w.Heap().WriteI32(blk.Addr, 9); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	if hr.Version() != 1 {
		t.Errorf("temporal reader at v%d inside window, want 1", hr.Version())
	}
}

func TestAdaptiveNotification(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/n"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc(hw, types.Int32(), 4, "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Poll repeatedly with no updates: the adaptive protocol must
	// switch to notifications.
	for i := 0; i < 5; i++ {
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	subscribed := hr.s.state.Subscribed
	r.mu.Unlock()
	if !subscribed {
		t.Fatal("reader did not subscribe after repeated fresh polls")
	}
	// A write must invalidate the reader asynchronously.
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, _ := hw.Mem().BlockByName("a")
	if err := w.Heap().WriteI32(blk.Addr, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		inv := hr.s.state.Invalidated
		r.mu.Unlock()
		if inv {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("notification never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Next read lock fetches the new version.
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version() != 2 {
		t.Errorf("reader at v%d after invalidation, want 2", hr.Version())
	}
}

func TestNoDiffModeSwitching(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/nd")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), n, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	writeAll := func() {
		t.Helper()
		if err := c.WLock(h); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := c.Heap().WriteI32(blk.Addr+mem.Addr(4*i), int32(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WUnlock(h); err != nil {
			t.Fatal(err)
		}
	}
	if h.NoDiffMode() {
		t.Fatal("fresh segment already in no-diff mode")
	}
	writeAll()
	writeAll()
	if !h.NoDiffMode() {
		t.Fatal("segment did not switch to no-diff after hot releases")
	}
	// In no-diff mode, releases take no page faults.
	c.Heap().ResetStats()
	writeAll()
	if f := c.Heap().Stats().Faults; f != 0 {
		t.Errorf("no-diff section took %d faults", f)
	}
}

func TestFreePropagatesBetweenClients(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/f"
	c1 := newTestClient(t, arch.AMD64(), "c1")
	h1, err := c1.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.WLock(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Alloc(h1, types.Int32(), 4, "a"); err != nil {
		t.Fatal(err)
	}
	b2, err := c1.Alloc(h1, types.Int32(), 4, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.WUnlock(h1); err != nil {
		t.Fatal(err)
	}

	c2 := newTestClient(t, arch.Sparc(), "c2")
	h2, err := c2.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RLock(h2); err != nil {
		t.Fatal(err)
	}
	if err := c2.RUnlock(h2); err != nil {
		t.Fatal(err)
	}
	if h2.Mem().NumBlocks() != 2 {
		t.Fatalf("c2 blocks = %d", h2.Mem().NumBlocks())
	}

	if err := c1.WLock(h1); err != nil {
		t.Fatal(err)
	}
	if err := c1.Free(h1, b2); err != nil {
		t.Fatal(err)
	}
	if err := c1.WUnlock(h1); err != nil {
		t.Fatal(err)
	}

	if err := c2.RLock(h2); err != nil {
		t.Fatal(err)
	}
	if err := c2.RUnlock(h2); err != nil {
		t.Fatal(err)
	}
	if _, ok := h2.Mem().BlockByName("b"); ok {
		t.Error("freed block still cached at c2")
	}
}

func TestCrossSegmentPointers(t *testing.T) {
	addr := startServer(t)
	segA := addr + "/a"
	segB := addr + "/b"
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}

	w := newTestClient(t, arch.AMD64(), "w")
	ha, err := w.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := w.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hb); err != nil {
		t.Fatal(err)
	}
	target, err := w.Alloc(hb, types.Int32(), 1, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(target.Addr, 1234); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hb); err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(ha); err != nil {
		t.Fatal(err)
	}
	pblk, err := w.Alloc(ha, pi, 1, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WritePtr(pblk.Addr, target.Addr); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(ha); err != nil {
		t.Fatal(err)
	}

	// A second client opens only segment A; following the pointer
	// reserves segment B automatically, and locking B fetches the
	// data.
	r := newTestClient(t, arch.Sparc(), "r")
	hra, err := r.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hra); err != nil {
		t.Fatal(err)
	}
	pb, ok := hra.Mem().BlockByName("p")
	if !ok {
		t.Fatal("pointer block missing")
	}
	tgt, err := r.Heap().ReadPtr(pb.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hra); err != nil {
		t.Fatal(err)
	}
	if tgt == 0 {
		t.Fatal("cross-segment pointer is nil")
	}
	// The target segment was reserved as a shell; lock it to fetch.
	hrb := openExisting(t, r, segB)
	if err := r.RLock(hrb); err != nil {
		t.Fatal(err)
	}
	v, err := r.Heap().ReadI32(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RUnlock(hrb); err != nil {
		t.Fatal(err)
	}
	if v != 1234 {
		t.Errorf("cross-segment value = %d, want 1234", v)
	}
}

func TestOpenNonexistentViaMIPFails(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	if _, err := c.MIPToPtr(addr + "/nosuch#head"); err == nil {
		t.Error("MIP into nonexistent segment resolved")
	}
}

func TestPtrToMIPPublicAPI(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/m")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(h, types.Int32(), 8, "arr")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	mip, err := c.PtrToMIP(b.Addr + 12)
	if err != nil {
		t.Fatal(err)
	}
	want := addr + "/m#arr#3"
	if mip != want {
		t.Errorf("PtrToMIP = %q, want %q", mip, want)
	}
	back, err := c.MIPToPtr(mip)
	if err != nil {
		t.Fatal(err)
	}
	if back != b.Addr+12 {
		t.Errorf("roundtrip = %#x, want %#x", uint64(back), uint64(b.Addr+12))
	}
	if s, err := c.PtrToMIP(0); err != nil || s != "" {
		t.Errorf("PtrToMIP(0) = %q, %v", s, err)
	}
}
