package core

import (
	"net"
	"sync/atomic"
	"testing"

	"interweave/internal/faultnet"
	"interweave/internal/obs"
	"interweave/internal/server"
	"interweave/internal/types"
)

// Cross-process trace propagation under chaos: these tests share one
// obs.Tracer between the client and the in-process server, so client
// spans and the server spans joined from wire-propagated contexts
// land in the same store and the parent/child links can be asserted
// end to end across faultnet-injected failures.

// startTracedServer is startChaosServer with a tracer wired in.
func startTracedServer(t *testing.T, tr *obs.Tracer) string {
	t.Helper()
	srv, err := server.New(server.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

// tracedTrace finds the single kept trace rooted at rootName.
func tracedTrace(t *testing.T, tr *obs.Tracer, rootName string) obs.TraceData {
	t.Helper()
	var ids []string
	for _, s := range tr.Traces() {
		if s.Root == rootName {
			ids = append(ids, s.TraceID)
		}
	}
	if len(ids) != 1 {
		t.Fatalf("%d kept traces rooted at %q, want exactly 1", len(ids), rootName)
	}
	td, ok := tr.Trace(ids[0])
	if !ok {
		t.Fatalf("trace %s vanished from the store", ids[0])
	}
	return td
}

// tracedSpans returns every span in td with the given name.
func tracedSpans(td obs.TraceData, name string) []obs.SpanData {
	var out []obs.SpanData
	for _, sd := range td.Spans {
		if sd.Name == name {
			out = append(out, sd)
		}
	}
	return out
}

// tracedSpan returns the single span named name, failing on absence
// or ambiguity.
func tracedSpan(t *testing.T, td obs.TraceData, name string) obs.SpanData {
	t.Helper()
	found := tracedSpans(td, name)
	if len(found) != 1 {
		names := make([]string, len(td.Spans))
		for i, sd := range td.Spans {
			names[i] = sd.Name
		}
		t.Fatalf("trace has %d spans named %q, want 1 (spans: %v)", len(found), name, names)
	}
	return found[0]
}

func attrValue(sd obs.SpanData, key string) string {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestChaosTraceWriteUnlockReplyLost is the issue's acceptance
// scenario for tracing: a WriteUnlock whose reply is lost must leave
// ONE trace telling the whole story — the errored RPC attempt, the
// server handler that did apply the release (joined via the wire
// context, so its parent is the client's attempt span), and the
// recovery probe whose server span links the same way.
func TestChaosTraceWriteUnlockReplyLost(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{Seed: 11})
	addr := startTracedServer(t, tr)
	sched := faultnet.NewSchedule()
	var arm atomic.Bool
	sched.AddRule(faultnet.Rule{Dir: faultnet.Down, Op: faultnet.OpReset, When: armOnce(&arm)})
	p := startChaosProxy(t, addr, sched)

	opts := fastRetry("traced")
	opts.Tracer = tr
	c := newChaosClient(t, opts)
	h, err := c.Open(p.Addr() + "/traced")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 1, "val")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Heap().WriteI32(blk.Addr, 7); err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	if err := c.WUnlock(h); err != nil {
		t.Fatalf("write unlock under fault: %v", err)
	}
	if n := sched.Stats().Resets; n != 1 {
		t.Fatalf("schedule fired %d resets, want exactly 1", n)
	}

	td := tracedTrace(t, tr, "client.WriteUnlock")
	if !td.Errored || td.Kept != "error" {
		t.Errorf("trace errored=%v kept=%q, want true/error", td.Errored, td.Kept)
	}

	root := tracedSpan(t, td, "client.WriteUnlock")
	if root.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", root.ParentID)
	}

	// The killed attempt: errored, child of the root, and — because
	// the request DID reach the server before the reply was lost —
	// parent of the server's handler span.
	rpcWU := tracedSpan(t, td, "rpc.WriteUnlock")
	if rpcWU.ParentID != root.SpanID {
		t.Errorf("rpc.WriteUnlock parent = %d, want root %d", rpcWU.ParentID, root.SpanID)
	}
	if rpcWU.Err == "" {
		t.Error("killed rpc.WriteUnlock attempt carries no error")
	}
	if got := attrValue(rpcWU, "attempt"); got != "0" {
		t.Errorf("rpc.WriteUnlock attempt = %q, want 0", got)
	}
	srvWU := tracedSpan(t, td, "server.WriteUnlock")
	if srvWU.ParentID != rpcWU.SpanID {
		t.Errorf("server.WriteUnlock parent = %d, want client attempt span %d (cross-process link)", srvWU.ParentID, rpcWU.SpanID)
	}

	// The recovery: client.recover under the root, its Resume probe
	// under it, and the server's Resume handler joined to the probe.
	rec := tracedSpan(t, td, "client.recover")
	if rec.ParentID != root.SpanID {
		t.Errorf("client.recover parent = %d, want root %d", rec.ParentID, root.SpanID)
	}
	if got := attrValue(rec, "outcome"); got != "already-applied" {
		t.Errorf("recovery outcome = %q, want already-applied", got)
	}
	rpcResume := tracedSpan(t, td, "rpc.Resume")
	if rpcResume.ParentID != rec.SpanID {
		t.Errorf("rpc.Resume parent = %d, want client.recover %d", rpcResume.ParentID, rec.SpanID)
	}
	if rpcResume.Err != "" {
		t.Errorf("rpc.Resume errored: %s", rpcResume.Err)
	}
	srvResume := tracedSpan(t, td, "server.Resume")
	if srvResume.ParentID != rpcResume.SpanID {
		t.Errorf("server.Resume parent = %d, want rpc.Resume %d (cross-process link)", srvResume.ParentID, rpcResume.SpanID)
	}

	// The collected diff rides the same trace.
	coll := tracedSpan(t, td, "client.diff_collect")
	if coll.ParentID != root.SpanID {
		t.Errorf("client.diff_collect parent = %d, want root %d", coll.ParentID, root.SpanID)
	}
}

// TestChaosTraceReadLockRetryAttempts: a ReadLock whose request is
// lost is retried by the transport layer, and the trace must show the
// retries as sibling attempt spans under one root — attempt 0 errored
// with no server span (the server never saw it), attempt 1 clean and
// linked to the server's handler span.
func TestChaosTraceReadLockRetryAttempts(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{Seed: 12})
	addr := startTracedServer(t, tr)
	sched := faultnet.NewSchedule()
	var arm atomic.Bool
	sched.AddRule(faultnet.Rule{Dir: faultnet.Up, Op: faultnet.OpReset, When: armOnce(&arm)})
	p := startChaosProxy(t, addr, sched)
	segName := p.Addr() + "/rt"

	// A writer (untraced) publishes data for the reader to fetch.
	w := newChaosClient(t, fastRetry("writer"))
	wh, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(wh); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(wh, types.Int32(), 1, "val")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(blk.Addr, 41); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(wh); err != nil {
		t.Fatal(err)
	}

	// The traced reader: its first ReadLock request is killed on the
	// way up, so the client retries on a fresh connection.
	ropts := fastRetry("reader")
	ropts.Tracer = tr
	r := newChaosClient(t, ropts)
	rh, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	if err := r.RLock(rh); err != nil {
		t.Fatalf("read lock under fault: %v", err)
	}
	if err := r.RUnlock(rh); err != nil {
		t.Fatal(err)
	}

	td := tracedTrace(t, tr, "client.ReadLock")
	root := tracedSpan(t, td, "client.ReadLock")
	attempts := tracedSpans(td, "rpc.ReadLock")
	if len(attempts) < 2 {
		names := make([]string, len(td.Spans))
		for i, sd := range td.Spans {
			names[i] = sd.Name
		}
		t.Fatalf("trace has %d rpc.ReadLock attempt spans, want >= 2 (spans: %v)", len(attempts), names)
	}
	seen := map[string]bool{}
	var okAttempt obs.SpanData
	for _, a := range attempts {
		if a.ParentID != root.SpanID {
			t.Errorf("attempt span parent = %d, want root %d", a.ParentID, root.SpanID)
		}
		n := attrValue(a, "attempt")
		if seen[n] {
			t.Errorf("duplicate attempt attr %q", n)
		}
		seen[n] = true
		if a.Err == "" {
			okAttempt = a
		}
	}
	if !seen["0"] || !seen["1"] {
		t.Errorf("attempt attrs = %v, want 0 and 1", seen)
	}
	if okAttempt.SpanID == 0 {
		t.Fatal("no successful rpc.ReadLock attempt in the trace")
	}

	// The server saw exactly one ReadLock (the lost request never
	// arrived) and its handler span links to the successful attempt.
	srvRL := tracedSpan(t, td, "server.ReadLock")
	if srvRL.ParentID != okAttempt.SpanID {
		t.Errorf("server.ReadLock parent = %d, want successful attempt %d (cross-process link)", srvRL.ParentID, okAttempt.SpanID)
	}
	fresh := tracedSpan(t, td, "server.freshness")
	if fresh.ParentID != srvRL.SpanID {
		t.Errorf("server.freshness parent = %d, want server.ReadLock %d", fresh.ParentID, srvRL.SpanID)
	}
}
