package core

import (
	"net"
	"testing"
	"time"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
)

// TestServerRestartFromCheckpoint kills a server after a checkpoint,
// restarts it from disk on the same address, and verifies that (a) an
// existing client transparently reconnects and its cached state stays
// valid, and (b) a fresh client sees all data — the paper's "partial
// protection against server failure".
func TestServerRestartFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv1, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = srv1.Serve(ln) }()
	segName := addr + "/durable"

	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(h, types.Int32(), 8, "a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Heap().WriteI32(b.Addr+mem.Addr(4*i), int32(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}

	// Close checkpoints; restart from the same directory and address.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	// The existing client reconnects on its next lock; its cached
	// copy is version-valid, so no data travels.
	if err := c.RLock(h); err != nil {
		t.Fatalf("read lock after restart: %v", err)
	}
	if v, _ := c.Heap().ReadI32(b.Addr + 4); v != 1 {
		t.Errorf("cached value = %d", v)
	}
	if err := c.RUnlock(h); err != nil {
		t.Fatal(err)
	}
	// And it can write again.
	if err := c.WLock(h); err != nil {
		t.Fatalf("write lock after restart: %v", err)
	}
	if err := c.Heap().WriteI32(b.Addr, 777); err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}

	// A fresh client sees the checkpointed data plus the new write.
	c2 := newTestClient(t, arch.Sparc(), "c2")
	h2, err := c2.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RLock(h2); err != nil {
		t.Fatal(err)
	}
	b2, ok := h2.Mem().BlockByName("a")
	if !ok {
		t.Fatal("block a missing after restart")
	}
	if v, _ := c2.Heap().ReadI32(b2.Addr); v != 777 {
		t.Errorf("fresh client sees %d, want 777", v)
	}
	if v, _ := c2.Heap().ReadI32(b2.Addr + 12); v != 9 {
		t.Errorf("checkpointed value = %d, want 9", v)
	}
	if err := c2.RUnlock(h2); err != nil {
		t.Fatal(err)
	}
}

// TestServerGoneFails verifies clean errors when no server comes
// back.
func TestServerGoneFails(t *testing.T) {
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	segName := ln.Addr().String() + "/gone"

	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.RLock(h); err == nil {
		_ = c.RUnlock(h)
		t.Error("read lock against a dead server succeeded")
	}
}

// TestSubscriptionDroppedOnReconnect: after a server restart the old
// subscription is gone; the client must not trust local freshness.
func TestSubscriptionDroppedOnReconnect(t *testing.T) {
	dir := t.TempDir()
	srv1, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = srv1.Serve(ln) }()
	segName := addr + "/sub"

	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(hw, types.Int32(), 4, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the adaptive protocol into notification mode.
	for i := 0; i < 5; i++ {
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	subscribed := hr.s.state.Subscribed
	r.mu.Unlock()
	if !subscribed {
		t.Fatal("setup: reader did not subscribe")
	}

	// Restart the server; both clients reconnect lazily.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	// Writer updates through the new server.
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(blk.Addr, 31337); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	// The reader's subscription died with the old server; its next
	// read lock must poll and fetch the new version rather than trust
	// the stale "no notification arrived" state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		rb, _ := hr.Mem().BlockByName("a")
		v, _ := r.Heap().ReadI32(rb.Addr)
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
		if v == 31337 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reader stuck at stale value %d", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLayoutForCacheLocality verifies the paper's data-layout
// optimization: when a segment is cached for the first time, blocks
// that were modified in the same write critical section (same
// version) are placed contiguously.
func TestLayoutForCacheLocality(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/locality"
	w := newTestClient(t, arch.AMD64(), "w")
	hw, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Three critical sections, three blocks each.
	var groups [][]uint32
	for g := 0; g < 3; g++ {
		if err := w.WLock(hw); err != nil {
			t.Fatal(err)
		}
		var serials []uint32
		for i := 0; i < 3; i++ {
			b, err := w.Alloc(hw, types.Int32(), 32, "")
			if err != nil {
				t.Fatal(err)
			}
			serials = append(serials, b.Serial)
		}
		if err := w.WUnlock(hw); err != nil {
			t.Fatal(err)
		}
		groups = append(groups, serials)
	}

	r := newTestClient(t, arch.AMD64(), "r")
	hr, err := r.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}()
	// Every block of version group g must precede every block of
	// group g+1 in the reader's address space.
	var maxPrev mem.Addr
	for g, serials := range groups {
		var lo, hi mem.Addr
		for i, serial := range serials {
			b, ok := hr.Mem().BlockBySerial(serial)
			if !ok {
				t.Fatalf("block %d missing", serial)
			}
			if i == 0 || b.Addr < lo {
				lo = b.Addr
			}
			if b.End() > hi {
				hi = b.End()
			}
		}
		if lo < maxPrev {
			t.Errorf("group %d starts at %#x, before previous group's end %#x",
				g, uint64(lo), uint64(maxPrev))
		}
		maxPrev = hi
	}
}
