package core

import (
	"sync/atomic"
	"testing"

	"interweave/internal/faultnet"
	"interweave/internal/mem"
	"interweave/internal/types"
)

// TestReconnectRPCMatrix drives each client-visible RPC kind into a
// connection reset at both fault points — with the request lost
// before the server acts (Up) and with the reply lost after it acted
// (Down) — and asserts the client recovers through backoff-retry
// while the operation's effect lands exactly once. The WriteUnlock
// rows are the at-most-once cases the issue calls out: a duplicate
// release after a lost reply must not bump the version twice.
func TestReconnectRPCMatrix(t *testing.T) {
	dirs := []struct {
		name string
		dir  faultnet.Direction
	}{
		{"request-lost", faultnet.Up},
		{"reply-lost", faultnet.Down},
	}
	for _, kind := range []string{"open", "readlock", "writelock", "writeunlock"} {
		for _, d := range dirs {
			kind, d := kind, d
			t.Run(kind+"/"+d.name, func(t *testing.T) {
				runReconnectCase(t, kind, d.dir)
			})
		}
	}
}

func runReconnectCase(t *testing.T, kind string, dir faultnet.Direction) {
	srv, addr := startChaosServer(t)
	sched := faultnet.NewSchedule()
	var arm atomic.Bool
	sched.AddRule(faultnet.Rule{Dir: dir, Op: faultnet.OpReset, When: armOnce(&arm)})
	p := startChaosProxy(t, addr, sched)
	segName := p.Addr() + "/rc"

	// Prime: the segment exists at version 1 holding value 1, via a
	// separate client so the victim's connection stays clean.
	setup := newChaosClient(t, fastRetry("setup"))
	hs, err := setup.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WLock(hs); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Alloc(hs, types.Int32(), 1, "v"); err != nil {
		t.Fatal(err)
	}
	blk, _ := hs.Mem().BlockByName("v")
	if err := setup.Heap().WriteI32(blk.Addr, 1); err != nil {
		t.Fatal(err)
	}
	if err := setup.WUnlock(hs); err != nil {
		t.Fatal(err)
	}

	c := newChaosClient(t, fastRetry("victim"))
	wantVer, wantVal := uint32(1), int32(1)

	writeSection := func(h *Segment, armBeforeRelease bool) {
		if err := c.WLock(h); err != nil {
			t.Fatalf("write lock under fault: %v", err)
		}
		b, ok := h.Mem().BlockByName("v")
		if !ok {
			t.Fatal("block v missing")
		}
		if err := c.Heap().WriteI32(b.Addr, 2); err != nil {
			t.Fatal(err)
		}
		if armBeforeRelease {
			arm.Store(true)
		}
		if err := c.WUnlock(h); err != nil {
			t.Fatalf("write unlock under fault: %v", err)
		}
		wantVer, wantVal = 2, 2
	}

	switch kind {
	case "open":
		arm.Store(true)
		if _, err := c.Open(segName); err != nil {
			t.Fatalf("open under fault: %v", err)
		}
	case "readlock":
		h, err := c.Open(segName)
		if err != nil {
			t.Fatal(err)
		}
		arm.Store(true)
		if err := c.RLock(h); err != nil {
			t.Fatalf("read lock under fault: %v", err)
		}
		b, _ := h.Mem().BlockByName("v")
		if v, _ := c.Heap().ReadI32(b.Addr); v != 1 {
			t.Errorf("read %d, want 1", v)
		}
		if err := c.RUnlock(h); err != nil {
			t.Fatal(err)
		}
	case "writelock":
		h, err := c.Open(segName)
		if err != nil {
			t.Fatal(err)
		}
		arm.Store(true)
		writeSection(h, false)
	case "writeunlock":
		h, err := c.Open(segName)
		if err != nil {
			t.Fatal(err)
		}
		writeSection(h, true)
	}

	if n := sched.Stats().Resets; n != 1 {
		t.Fatalf("schedule fired %d resets, want exactly 1", n)
	}

	// Exactly-once effect: the authoritative version moved only as
	// far as the fault-free sequence would move it.
	seg := srv.SegmentSnapshot(segName)
	if seg == nil {
		t.Fatal("segment missing on server")
	}
	if seg.Version != wantVer {
		t.Errorf("server version = %d, want %d", seg.Version, wantVer)
	}

	// A fresh fault-free reader confirms the content.
	verify := newChaosClient(t, fastRetry("verify"))
	hv, err := verify.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.RLock(hv); err != nil {
		t.Fatal(err)
	}
	vb, ok := hv.Mem().BlockByName("v")
	if !ok {
		t.Fatal("block v missing in verify client")
	}
	if v, _ := verify.Heap().ReadI32(vb.Addr + mem.Addr(0)); v != wantVal {
		t.Errorf("verified value = %d, want %d", v, wantVal)
	}
	if err := verify.RUnlock(hv); err != nil {
		t.Fatal(err)
	}
}
