package core

import (
	"net"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/server"
	"interweave/internal/types"
)

// Benchmarks for the adaptive polling/notification protocol: a read
// lock that must poll the server pays a round trip; one backed by a
// notification subscription is granted locally. This is the paper's
// "adaptive protocol often allows the client library to avoid
// communication with the server when updates are not required".

func benchClientSegment(b *testing.B) (*Client, *Segment) {
	b.Helper()
	srv, err := server.New(server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	b.Cleanup(func() { _ = srv.Close() })
	c, err := NewClient(Options{Profile: arch.AMD64()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	h, err := c.Open(ln.Addr().String() + "/bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Alloc(h, types.Int32(), 64, "a"); err != nil {
		b.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		b.Fatal(err)
	}
	return c, h
}

// BenchmarkReadLockPolling forces polling mode: every acquisition is
// a server round trip over loopback TCP.
func BenchmarkReadLockPolling(b *testing.B) {
	c, h := benchClientSegment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset the adaptive state so the protocol never switches to
		// notifications.
		c.mu.Lock()
		h.s.adaptive = coherence.Adaptive{}
		c.mu.Unlock()
		if err := c.RLock(h); err != nil {
			b.Fatal(err)
		}
		if err := c.RUnlock(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadLockNotification lets the adaptive protocol settle
// into notification mode: acquisitions are granted locally.
func BenchmarkReadLockNotification(b *testing.B) {
	c, h := benchClientSegment(b)
	// Warm up past the adaptive threshold.
	for i := 0; i < 5; i++ {
		if err := c.RLock(h); err != nil {
			b.Fatal(err)
		}
		if err := c.RUnlock(h); err != nil {
			b.Fatal(err)
		}
	}
	c.mu.Lock()
	subscribed := h.s.state.Subscribed
	c.mu.Unlock()
	if !subscribed {
		b.Fatal("adaptive protocol did not subscribe")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.RLock(h); err != nil {
			b.Fatal(err)
		}
		if err := c.RUnlock(h); err != nil {
			b.Fatal(err)
		}
	}
}
