package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"interweave/internal/diff"
	"interweave/internal/protocol"
	"interweave/internal/wire"
)

// Transactions (the paper's Section 6 work-in-progress, single-server
// case): a process write-locks several segments, modifies them, and
// commits all of the changes atomically — other clients observe
// either every segment's new version or none of them.

// ErrTxServers reports a transaction spanning more than one server.
var ErrTxServers = errors.New("core: transaction segments live on different servers")

// TxLock acquires write locks on all the given segments in a
// canonical (name-sorted) order, so concurrent transactions over
// overlapping segment sets cannot deadlock.
func (c *Client) TxLock(hs ...*Segment) error {
	if len(hs) == 0 {
		return errors.New("core: empty transaction")
	}
	sorted := append([]*Segment(nil), hs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].s.name < sorted[j].s.name })
	for i, h := range sorted {
		if err := c.WLock(h); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = c.WUnlock(sorted[j])
			}
			return err
		}
	}
	return nil
}

// TxCommit collects each write-locked segment's diff and publishes
// them in one atomic server operation, then releases the locks. On a
// commit failure no segment advances and the locks are released; the
// local modifications remain in the caller's cache (at the old
// version) and are discarded on the next update.
func (c *Client) TxCommit(hs ...*Segment) error {
	sp := c.tracer.Start("client.TxCommit")
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(hs) == 0 {
		return errors.New("core: empty transaction")
	}
	first := hs[0].s
	msg := &protocol.TxCommit{Parts: make([]protocol.WriteUnlock, len(hs))}
	collected := make([]*wire.SegmentDiff, len(hs))
	stats := make([]diff.Stats, len(hs))
	for i, h := range hs {
		s := h.s
		if !s.writer {
			return fmt.Errorf("%w: write (TxCommit %q)", ErrNotLocked, s.name)
		}
		if s.conn != first.conn {
			return fmt.Errorf("%w: %q vs %q", ErrTxServers, first.name, s.name)
		}
		d, err := diff.CollectSegment(s.m, diff.CollectOptions{
			NoDiff:  s.noDiff,
			Freed:   s.freed,
			Stats:   &stats[i],
			Swizzle: c.swizzler(),
		})
		if err != nil {
			return fmt.Errorf("core: collecting diff of %q: %w", s.name, err)
		}
		collected[i] = d
		if c.ins != nil {
			c.ins.diffBytes.Add(uint64(stats[i].Bytes))
			c.ins.diffUnitsSent.Add(uint64(stats[i].Units))
		}
		attachDescDefs(s, d)
		s.wseq++
		part := protocol.WriteUnlock{Seg: s.name, WriterID: c.writerID, Seq: s.wseq}
		if !d.Empty() {
			part.Diff = d
		}
		msg.Parts[i] = part
	}

	reply, err := c.callSeg(first, msg, sp)
	if err != nil {
		// The commit failed as a unit; release local locks so the
		// caller can recover (retry after a fresh TxLock).
		if errCode(err) == protocol.CodeNotReplicated {
			err = fmt.Errorf("%w: %w", ErrNotReplicated, err)
		}
		for _, h := range hs {
			h.s.releaseWrite(c)
		}
		sp.Error(err)
		return fmt.Errorf("core: transaction commit: %w", err)
	}
	tr, ok := reply.(*protocol.TxReply)
	if !ok || len(tr.Versions) != len(hs) {
		for _, h := range hs {
			h.s.releaseWrite(c)
		}
		return fmt.Errorf("core: unexpected reply %T to transaction", reply)
	}
	now := time.Now()
	for i, h := range hs {
		s := h.s
		s.lastCollect = stats[i]
		s.version = tr.Versions[i]
		s.state.Version = tr.Versions[i]
		s.state.FetchedAt = now
		s.state.Invalidated = false
		s.freed = nil
		s.m.DropTwins()
		s.m.Unprotect()
		s.updateNoDiff(c, stats[i].Units)
		s.releaseWrite(c)
	}
	return nil
}
