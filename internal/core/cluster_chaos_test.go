package core

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/faultnet"
	"interweave/internal/mem"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/server"
	"interweave/internal/types"
)

// chaosNode is one member of a test cluster: a real server reached
// only through a fault-injecting proxy. The proxy's address IS the
// member's identity — peers and clients alike dial it — so closing
// the proxy is indistinguishable from the machine dying.
type chaosNode struct {
	srv   *server.Server
	node  *cluster.Node
	proxy *faultnet.Proxy
	reg   *obs.Registry
	addr  string
}

// kill severs every connection to the node and refuses new ones.
func (n *chaosNode) kill() { _ = n.proxy.Close() }

// startChaosCluster brings up n servers in cluster mode, each behind
// its own faultnet proxy, with replication factor r. A zero heartbeat
// disables failure detection (tests that need staleness drive epochs
// by hand); a positive one runs the real probe/promote pipeline.
func startChaosCluster(t *testing.T, n, r int, heartbeat time.Duration) []*chaosNode {
	t.Helper()
	nodes := make([]*chaosNode, n)
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		p := startChaosProxy(t, ln.Addr().String(), faultnet.NewSchedule())
		nodes[i] = &chaosNode{proxy: p, addr: p.Addr(), reg: obs.NewRegistry()}
		addrs[i] = p.Addr()
	}
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node := cluster.NewNode(cluster.Options{
			Self:             addrs[i],
			Peers:            peers,
			Replicas:         r,
			Heartbeat:        heartbeat,
			FailureThreshold: 3,
			DialTimeout:      250 * time.Millisecond,
			Metrics:          nodes[i].reg,
			Logf:             t.Logf,
		})
		// Every chaos node runs with the journal on: the whole suite's
		// replication invariants must hold unchanged under journal-mode
		// durability (DESIGN.md §9).
		srv, err := server.New(server.Options{
			Cluster:    node,
			Metrics:    nodes[i].reg,
			Logf:       t.Logf,
			JournalDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].node, nodes[i].srv = node, srv
		go func(s *server.Server, ln net.Listener) { _ = s.Serve(ln) }(srv, lns[i])
		node.Start()
		t.Cleanup(func() { node.Close(); _ = srv.Close() })
	}
	return nodes
}

// nodeAt returns the cluster node whose address is addr.
func nodeAt(t *testing.T, nodes []*chaosNode, addr string) *chaosNode {
	t.Helper()
	for _, n := range nodes {
		if n.addr == addr {
			return n
		}
	}
	t.Fatalf("no cluster node at %q", addr)
	return nil
}

// writeVals writes vals into blk and releases the write lock.
func writeVals(t *testing.T, c *Client, h *Segment, base mem.Addr, vals ...int32) {
	t.Helper()
	for i, v := range vals {
		if err := c.Heap().WriteI32(base+mem.Addr(4*i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatalf("WUnlock: %v", err)
	}
}

// readVals opens seg with a fresh client and returns the named
// block's first len(want) int32 values, comparing against want.
func readVals(t *testing.T, c *Client, seg, block string, want ...int32) {
	t.Helper()
	h, err := c.Open(seg)
	if err != nil {
		t.Fatalf("Open(%q): %v", seg, err)
	}
	if err := c.RLock(h); err != nil {
		t.Fatalf("RLock: %v", err)
	}
	defer func() { _ = c.RUnlock(h) }()
	b, ok := h.Mem().BlockByName(block)
	if !ok {
		t.Fatalf("block %q missing from %q", block, seg)
	}
	for i, w := range want {
		v, err := c.Heap().ReadI32(b.Addr + mem.Addr(4*i))
		if err != nil {
			t.Fatal(err)
		}
		if v != w {
			t.Errorf("%s[%d] = %d, want %d", block, i, v, w)
		}
	}
}

// TestClusterFailoverMidWrite is the issue's acceptance scenario: the
// primary is killed with a write release in flight; the replica is
// promoted through the heartbeat/epoch pipeline; the client's
// existing Resume recovery completes the release against the new
// primary with no lost or duplicated versions.
func TestClusterFailoverMidWrite(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 5*time.Millisecond)
	seg := nodes[0].addr + "/acc"
	primary := nodeAt(t, nodes, nodes[0].node.Owner(seg))

	reg := obs.NewRegistry()
	opts := fastRetry("failover")
	opts.Metrics = reg
	c := newChaosClient(t, opts)
	// Seed the membership so the client can reroute even though its
	// first server may be the owner of everything it opens.
	var survivor *chaosNode
	for _, n := range nodes {
		if n != primary {
			survivor = n
			break
		}
	}
	if err := c.RefreshRing(survivor.addr); err != nil {
		t.Fatal(err)
	}

	h, err := c.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 4, "vals")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 1, 2, 3, 4) // version 1, replicated
	if got := h.Version(); got != 1 {
		t.Fatalf("version after first release = %d, want 1", got)
	}

	// The release under fire: the primary dies with the release in
	// flight (diff collected, connection severed under it).
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	primary.kill()
	writeVals(t, c, h, blk.Addr, 10, 20, 30, 40)
	if got := h.Version(); got != 2 {
		t.Errorf("version after failover release = %d, want exactly 2 (no lost or duplicated versions)", got)
	}

	// The promoted owner holds version 2 with the committed data.
	newOwner := nodeAt(t, nodes, survivor.node.Owner(seg))
	if newOwner == primary {
		t.Fatalf("ownership of %q did not move off the dead primary", seg)
	}
	snap := newOwner.srv.SegmentSnapshot(seg)
	if snap == nil {
		t.Fatalf("promoted owner has no copy of %q", seg)
	}
	if snap.Version != 2 {
		t.Errorf("promoted owner at version %d, want 2", snap.Version)
	}
	if got := counterSum(newOwner.reg.Snapshot(), "iw_cluster_promotions_total"); got < 1 {
		t.Errorf("promotions on new owner = %d, want >= 1", got)
	}
	if got := counterSum(reg.Snapshot(), "iw_client_reroutes_total"); got < 1 {
		t.Errorf("client reroutes = %d, want >= 1", got)
	}

	// A fresh reader whose home server (the segment URL's host) may be
	// the dead primary still reaches the data via the adopted ring.
	ropts := fastRetry("reader")
	r := newChaosClient(t, ropts)
	if err := r.RefreshRing(survivor.addr); err != nil {
		t.Fatal(err)
	}
	readVals(t, r, seg, "vals", 10, 20, 30, 40)
}

// TestClusterRedirectStaleEpoch is the issue's second acceptance
// scenario: a client opening through a server whose ring epoch is
// stale converges on the owner in at most two redirect hops — one for
// the stale view, one for the epoch it learns en route.
func TestClusterRedirectStaleEpoch(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 0) // no heartbeat: staleness stays put
	home := nodes[0]

	// A segment whose epoch-1 owner is NOT its home server, so the
	// home's stale view yields the first hop.
	var seg string
	var owner *chaosNode
	for i := 0; ; i++ {
		seg = fmt.Sprintf("%s/stale%d", home.addr, i)
		if a := home.node.Owner(seg); a != home.addr {
			owner = nodeAt(t, nodes, a)
			break
		}
	}
	var target *chaosNode
	for _, n := range nodes {
		if n != home && n != owner {
			target = n
			break
		}
	}

	// Write through the cluster, then migrate the segment while the
	// home server is partitioned so it never hears the epoch bump.
	w := newChaosClient(t, fastRetry("writer"))
	h, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(h, types.Int32(), 2, "v")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, w, h, blk.Addr, 7, 9)

	home.proxy.Schedule().Partition(faultnet.Up)
	if err := w.Migrate(seg, target.addr); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	home.proxy.Schedule().Heal()

	if e := home.node.Epoch(); e != 1 {
		t.Fatalf("home server epoch = %d, want 1 (test needs a stale view)", e)
	}
	if e := target.node.Epoch(); e != 2 {
		t.Fatalf("migration target epoch = %d, want 2", e)
	}

	// A fresh client with no cluster knowledge opens via the stale
	// home: home (epoch 1) redirects to the old owner, which (epoch 2)
	// redirects to the migration target. Two hops, then data.
	reg := obs.NewRegistry()
	opts := fastRetry("stale-reader")
	opts.Metrics = reg
	r := newChaosClient(t, opts)
	readVals(t, r, seg, "v", 7, 9)
	if got := counterSum(reg.Snapshot(), "iw_client_redirects_total"); got == 0 || got > 2 {
		t.Errorf("redirects followed = %d, want 1..2 (converge in <= 2 hops)", got)
	}
	if e := r.ClusterEpoch(); e != 2 {
		t.Errorf("client adopted epoch %d, want 2", e)
	}

	// The route is cached: a second operation goes straight to the
	// owner with no further redirects.
	before := counterSum(reg.Snapshot(), "iw_client_redirects_total")
	readVals(t, r, seg, "v", 7, 9)
	if got := counterSum(reg.Snapshot(), "iw_client_redirects_total"); got != before {
		t.Errorf("cached route still redirected: %d -> %d", before, got)
	}
}

// TestClusterReplicationInvariant checks replicate-before-acknowledge
// directly: the moment a release returns to the client, the replica
// already holds the new version and the at-most-once record, so a
// Resume probe against it answers exactly as the primary would.
func TestClusterReplicationInvariant(t *testing.T) {
	nodes := startChaosCluster(t, 3, 2, 0) // R=2: both other nodes replicate
	seg := nodes[0].addr + "/repl"
	owner := nodeAt(t, nodes, nodes[0].node.Owner(seg))

	c := newChaosClient(t, fastRetry("repl"))
	h, err := c.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 1, "x")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 42)

	for _, n := range nodes {
		if n == owner {
			continue
		}
		snap := n.srv.SegmentSnapshot(seg)
		if snap == nil {
			t.Fatalf("replica %s has no copy of %q after acked release", n.addr, seg)
		}
		if snap.Version != 1 {
			t.Errorf("replica %s at version %d, want 1", n.addr, snap.Version)
		}
	}
	if got := counterSum(owner.reg.Snapshot(), "iw_cluster_replicate_total"); got < 2 {
		t.Errorf("replicate fan-outs = %d, want >= 2", got)
	}
}

// TestClusterMigrationInvalidatesSubscribers: a reader that adapted
// to the notification protocol holds locally-fresh state and takes
// read locks without any RPC. When its segment migrates away, the old
// owner must push an invalidation as it demotes — otherwise the
// subscriber reads stale data forever, since the new owner has no
// subscription to notify.
func TestClusterMigrationInvalidatesSubscribers(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 0)
	seg := nodes[0].addr + "/sub"
	owner := nodeAt(t, nodes, nodes[0].node.Owner(seg))
	var target *chaosNode
	for _, n := range nodes {
		if n != owner {
			target = n
			break
		}
	}

	w := newChaosClient(t, fastRetry("sub-writer"))
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(hw, types.Int32(), 1, "v")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, w, hw, blk.Addr, 1)

	// Poll with no updates until the adaptive protocol subscribes.
	r := newChaosClient(t, fastRetry("sub-reader"))
	hr, err := r.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.RLock(hr); err != nil {
			t.Fatal(err)
		}
		if err := r.RUnlock(hr); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	subscribed := hr.s.state.Subscribed
	r.mu.Unlock()
	if !subscribed {
		t.Fatal("setup: reader did not subscribe after repeated fresh polls")
	}

	if err := w.Migrate(seg, target.addr); err != nil {
		t.Fatalf("Migrate: %v", err)
	}

	// Demotion on the old owner must invalidate the subscriber; without
	// it the reader stays locally fresh and never polls again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		inv := hr.s.state.Invalidated
		r.mu.Unlock()
		if inv {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never invalidated the subscribed reader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := counterSum(owner.reg.Snapshot(), "iw_cluster_demotions_total"); got < 1 {
		t.Errorf("demotions on old owner = %d, want >= 1", got)
	}

	// A post-migration write at the new owner must be visible to the
	// reader's next read lock (redirected off the demoted node).
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	writeVals(t, w, hw, blk.Addr, 7)
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	b, ok := hr.Mem().BlockByName("v")
	if !ok {
		t.Fatal("block v missing after refetch")
	}
	v, err := r.Heap().ReadI32(b.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("subscriber read %d after migration, want 7", v)
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
}

// TestClusterFencedRelease: a primary with a stale membership view
// accepts a write and fans it out; the replica — which has adopted a
// newer epoch under which the sender no longer owns the segment —
// must refuse the frame (fencing), depose the stale primary, and the
// client's release must recover at the real owner. Without fencing
// the deposed primary acks writes into a copy nobody routes to.
func TestClusterFencedRelease(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 0) // no heartbeat: staleness stays put
	seg := nodes[0].addr + "/fence"
	owner := nodeAt(t, nodes, nodes[0].node.Owner(seg))
	reps := owner.node.ReplicasOf(seg)
	if len(reps) == 0 {
		t.Fatal("setup: segment has no replica")
	}
	replica := nodeAt(t, nodes, reps[0])

	reg := obs.NewRegistry()
	opts := fastRetry("fenced")
	opts.Metrics = reg
	c := newChaosClient(t, opts)
	h, err := c.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 2, "v")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 1, 2) // version 1, replicated

	// Move ownership to the replica behind the primary's back: with the
	// primary's inbound blackholed, the replica adopts an epoch-2 view
	// pinning the segment to itself; the gossip push to the primary is
	// lost, so the primary still believes it owns the segment.
	owner.proxy.Schedule().Partition(faultnet.Up)
	ms := replica.node.Membership()
	ms.Epoch++
	ms.Overrides = append(ms.Overrides, protocol.Override{Seg: seg, Addr: replica.addr})
	if !replica.node.AdoptMembership(ms) {
		t.Fatal("setup: replica refused the crafted view")
	}
	owner.proxy.Schedule().Heal()
	if e := owner.node.Epoch(); e != 1 {
		t.Fatalf("stale primary epoch = %d, want 1 (gossip leaked through the partition)", e)
	}
	if e := replica.node.Epoch(); e != 2 {
		t.Fatalf("replica epoch = %d, want 2", e)
	}

	// The stale primary still grants the write lock and applies the
	// release, but its replication fan-out must be fenced; the client's
	// recovery then completes the same release at the new owner.
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 10, 20)
	if got := h.Version(); got != 2 {
		t.Errorf("version after fenced release = %d, want exactly 2", got)
	}

	if got := counterSum(owner.reg.Snapshot(), "iw_cluster_writes_fenced_total"); got < 1 {
		t.Errorf("fenced writes on stale primary = %d, want >= 1", got)
	}
	if got := counterSum(owner.reg.Snapshot(), "iw_cluster_demotions_total"); got < 1 {
		t.Errorf("demotions on stale primary = %d, want >= 1", got)
	}
	if e := owner.node.Epoch(); e != 2 {
		t.Errorf("deposed primary epoch = %d, want 2 (adopted from the fence reply)", e)
	}
	snap := replica.srv.SegmentSnapshot(seg)
	if snap == nil {
		t.Fatal("new owner has no copy after recovered release")
	}
	if snap.Version != 2 {
		t.Errorf("new owner at version %d, want 2", snap.Version)
	}

	// The committed data is reachable through the new view.
	r := newChaosClient(t, fastRetry("fence-reader"))
	if err := r.RefreshRing(replica.addr); err != nil {
		t.Fatal(err)
	}
	readVals(t, r, seg, "v", 10, 20)
}

// TestClusterReleaseNotReplicated: every placed replica must hold a
// release before it is acknowledged. With the sole replica dead (and
// no failure detector running to shrink placement), the release must
// fail typed as ErrNotReplicated rather than ack durability the
// cluster does not have.
func TestClusterReleaseNotReplicated(t *testing.T) {
	nodes := startChaosCluster(t, 3, 1, 0)
	seg := nodes[0].addr + "/ack"
	owner := nodeAt(t, nodes, nodes[0].node.Owner(seg))
	reps := owner.node.ReplicasOf(seg)
	if len(reps) == 0 {
		t.Fatal("setup: segment has no replica")
	}
	replica := nodeAt(t, nodes, reps[0])

	c := newChaosClient(t, fastRetry("noack"))
	h, err := c.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 1, "x")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 5) // version 1, replicated

	replica.kill()

	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	if err := c.Heap().WriteI32(blk.Addr, 6); err != nil {
		t.Fatal(err)
	}
	err = c.WUnlock(h)
	if err == nil {
		t.Fatal("release with a dead replica was acknowledged")
	}
	if !errors.Is(err, ErrNotReplicated) {
		t.Errorf("release error %v is not ErrNotReplicated", err)
	}

	// The write stays applied at the primary (re-covered by the next
	// successful fan-out's catch-up), but the replica never saw it.
	if snap := owner.srv.SegmentSnapshot(seg); snap == nil || snap.Version != 2 {
		t.Errorf("primary snapshot = %+v, want version 2", snap)
	}
	if snap := replica.srv.SegmentSnapshot(seg); snap == nil || snap.Version != 1 {
		t.Errorf("dead replica snapshot = %+v, want version 1", snap)
	}
}

// TestOpenOwnerDownTyped pins the typed error for an unreachable
// owner at Open time: the caller can errors.Is for ErrUnavailable
// instead of parsing a raw dial failure.
func TestOpenOwnerDownTyped(t *testing.T) {
	opts := fastRetry("down")
	opts.MaxRetries = 1
	c := newChaosClient(t, opts)
	_, err := c.Open("127.0.0.1:1/seg")
	if err == nil {
		t.Fatal("Open against a closed port succeeded")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("Open error %v is not ErrUnavailable", err)
	}
}

// fakeRedirector answers every request on one accepted connection
// with a fixed Redirect — a stand-in for a misconfigured or buggy
// cluster node.
func fakeRedirector(t *testing.T, red func(addr string) *protocol.Redirect) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	addr := ln.Addr().String()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer func() { _ = conn.Close() }()
				for {
					id, msg, err := protocol.ReadFrame(conn)
					if err != nil {
						return
					}
					var reply protocol.Message = red(addr)
					if _, ok := msg.(*protocol.Hello); ok {
						reply = &protocol.Ack{}
					}
					if err := protocol.WriteFrame(conn, id, reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return addr
}

// TestOpenRedirectMismatchTyped pins the typed errors for redirects
// the client refuses to chase: an owner outside the carried
// membership (a URL/membership host mismatch) and a self-redirect.
func TestOpenRedirectMismatchTyped(t *testing.T) {
	// Redirect to an address the membership does not contain.
	addr := fakeRedirector(t, func(self string) *protocol.Redirect {
		return &protocol.Redirect{
			Seg:   self + "/s",
			Owner: "203.0.113.9:1",
			Ms: protocol.Membership{Epoch: 1, Members: []protocol.Member{
				{Addr: self},
			}},
		}
	})
	c := newChaosClient(t, fastRetry("mismatch"))
	_, err := c.Open(addr + "/s")
	if err == nil {
		t.Fatal("Open through a mismatched redirect succeeded")
	}
	if !errors.Is(err, ErrBadRedirect) {
		t.Errorf("Open error %v is not ErrBadRedirect", err)
	}

	// Redirect pointing straight back at the server that issued it.
	loopAddr := fakeRedirector(t, func(self string) *protocol.Redirect {
		return &protocol.Redirect{
			Seg:   self + "/s",
			Owner: self,
			Ms: protocol.Membership{Epoch: 1, Members: []protocol.Member{
				{Addr: self},
			}},
		}
	})
	c2 := newChaosClient(t, fastRetry("loop"))
	_, err = c2.Open(loopAddr + "/s")
	if err == nil {
		t.Fatal("Open through a self-redirect succeeded")
	}
	if !errors.Is(err, ErrRedirectLoop) {
		t.Errorf("Open error %v is not ErrRedirectLoop", err)
	}
}

// TestClusterPromoteWhileEvicted is the eviction/failover cross case
// (DESIGN.md §12): both replicas of a segment have their in-memory
// copies evicted to their journals when the primary dies. The
// promotion pipeline must fault the state back in — on the peer
// answering the catch-up Pull and on the new owner adopting it —
// before serving, so failover lands on the replicated bytes, not an
// empty stub.
func TestClusterPromoteWhileEvicted(t *testing.T) {
	nodes := startChaosCluster(t, 3, 2, 5*time.Millisecond)
	seg := nodes[0].addr + "/evc"
	primary := nodeAt(t, nodes, nodes[0].node.Owner(seg))
	var survivors []*chaosNode
	for _, n := range nodes {
		if n != primary {
			survivors = append(survivors, n)
		}
	}

	c := newChaosClient(t, fastRetry("evict-writer"))
	if err := c.RefreshRing(survivors[0].addr); err != nil {
		t.Fatal(err)
	}
	h, err := c.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 4, "vals")
	if err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 1, 2, 3, 4) // version 1
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	writeVals(t, c, h, blk.Addr, 10, 20, 30, 40) // version 2

	// Replication is replicate-before-acknowledge: both replicas hold
	// version 2 now. Evict their in-memory copies to the journal.
	for _, n := range survivors {
		snap := n.srv.SegmentSnapshot(seg)
		if snap == nil || snap.Version != 2 {
			t.Fatalf("replica %s at %+v before eviction, want version 2", n.addr, snap)
		}
		if !n.srv.EvictSegment(seg) {
			t.Fatalf("EvictSegment refused on replica %s", n.addr)
		}
	}

	primary.kill()
	deadline := time.Now().Add(10 * time.Second)
	for survivors[0].node.Owner(seg) == primary.addr {
		if time.Now().After(deadline) {
			t.Fatal("ownership never moved off the dead primary")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh reader through the surviving ring sees the committed
	// data: the promotion faulted the evicted copies in.
	r := newChaosClient(t, fastRetry("evict-reader"))
	if err := r.RefreshRing(survivors[0].addr); err != nil {
		t.Fatal(err)
	}
	readVals(t, r, seg, "vals", 10, 20, 30, 40)

	newOwner := nodeAt(t, nodes, survivors[0].node.Owner(seg))
	if snap := newOwner.srv.SegmentSnapshot(seg); snap == nil || snap.Version != 2 {
		t.Errorf("promoted owner holds %+v, want version 2", snap)
	}
	var faults uint64
	for _, n := range survivors {
		faults += counterSum(n.reg.Snapshot(), "iw_server_segment_faults_total")
	}
	if faults == 0 {
		t.Error("promotion over evicted replicas recorded no segment fault-ins")
	}
}
