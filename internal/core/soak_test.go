package core

import (
	"fmt"
	"math/rand"
	"net"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
)

// TestSoakChurn is a longer randomized end-to-end run: several
// heterogeneous clients churn several segments (allocs, frees, scalar
// and string writes, policy changes), with a server checkpoint and
// restart in the middle. After every round, a Full-coherence observer
// must agree with a shadow model maintained alongside the writes.
func TestSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	dir := t.TempDir()
	srv, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = srv.Serve(ln) }()

	str16, err := types.StringOf(16)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := types.StructOf("rec",
		types.Field{Name: "n", Type: types.Int64()},
		types.Field{Name: "s", Type: str16},
	)
	if err != nil {
		t.Fatal(err)
	}

	const segments = 3
	segNames := make([]string, segments)
	for i := range segNames {
		segNames[i] = fmt.Sprintf("%s/soak%d", addr, i)
	}

	// Shadow model: segment -> block name -> (n, s).
	type recVal struct {
		n int64
		s string
	}
	shadow := make([]map[string]recVal, segments)
	for i := range shadow {
		shadow[i] = make(map[string]recVal)
	}

	profiles := arch.Profiles()
	rng := rand.New(rand.NewSource(77))
	writers := make([]*Client, 3)
	handles := make([][]*Segment, len(writers))
	for w := range writers {
		writers[w] = newTestClient(t, profiles[w%len(profiles)], fmt.Sprintf("w%d", w))
		handles[w] = make([]*Segment, segments)
		for s := range segNames {
			h, err := writers[w].Open(segNames[s])
			if err != nil {
				t.Fatal(err)
			}
			handles[w][s] = h
		}
	}

	verify := func(round int) {
		t.Helper()
		obs := newTestClient(t, profiles[rng.Intn(len(profiles))], "obs")
		defer func() { _ = obs.Close() }()
		for si, name := range segNames {
			h, err := obs.Open(name)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if err := obs.RLock(h); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			count := 0
			h.Mem().Blocks(func(b *mem.Block) bool {
				count++
				want, ok := shadow[si][b.Name]
				if !ok {
					t.Errorf("round %d: unexpected block %q in %s", round, b.Name, name)
					return false
				}
				lay := b.Layout
				fn, _ := lay.Field("n")
				fs, _ := lay.Field("s")
				n, err := obs.Heap().ReadI64(b.Addr + mem.Addr(fn.ByteOff))
				if err != nil {
					t.Error(err)
					return false
				}
				s, err := obs.Heap().ReadCString(b.Addr+mem.Addr(fs.ByteOff), 16)
				if err != nil {
					t.Error(err)
					return false
				}
				if n != want.n || s != want.s {
					t.Errorf("round %d: %s/%s = (%d,%q), want (%d,%q)",
						round, name, b.Name, n, s, want.n, want.s)
				}
				return true
			})
			if count != len(shadow[si]) {
				t.Errorf("round %d: %s has %d blocks, shadow has %d", round, name, count, len(shadow[si]))
			}
			if err := obs.RUnlock(h); err != nil {
				t.Fatal(err)
			}
		}
	}

	nextID := 0
	for round := 0; round < 12; round++ {
		// A random writer mutates a random segment.
		w := rng.Intn(len(writers))
		si := rng.Intn(segments)
		c, h := writers[w], handles[w][si]
		if err := c.WLock(h); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for op := 0; op < 1+rng.Intn(4); op++ {
			switch {
			case len(shadow[si]) == 0 || rng.Intn(3) == 0: // alloc
				name := fmt.Sprintf("r%d", nextID)
				nextID++
				blk, err := c.Alloc(h, rec, 1, name)
				if err != nil {
					t.Fatal(err)
				}
				val := recVal{n: rng.Int63(), s: fmt.Sprintf("v%d", rng.Intn(1e6))}
				lay := blk.Layout
				fn, _ := lay.Field("n")
				fs, _ := lay.Field("s")
				if err := c.Heap().WriteI64(blk.Addr+mem.Addr(fn.ByteOff), val.n); err != nil {
					t.Fatal(err)
				}
				if err := c.Heap().WriteCString(blk.Addr+mem.Addr(fs.ByteOff), 16, val.s); err != nil {
					t.Fatal(err)
				}
				shadow[si][name] = val
			case rng.Intn(4) == 0: // free
				for name := range shadow[si] {
					blk, ok := h.Mem().BlockByName(name)
					if !ok {
						t.Fatalf("round %d: writer missing block %q", round, name)
					}
					if err := c.Free(h, blk); err != nil {
						t.Fatal(err)
					}
					delete(shadow[si], name)
					break
				}
			default: // overwrite
				for name := range shadow[si] {
					blk, ok := h.Mem().BlockByName(name)
					if !ok {
						t.Fatalf("round %d: writer missing block %q", round, name)
					}
					val := recVal{n: rng.Int63(), s: fmt.Sprintf("u%d", rng.Intn(1e6))}
					lay := blk.Layout
					fn, _ := lay.Field("n")
					fs, _ := lay.Field("s")
					if err := c.Heap().WriteI64(blk.Addr+mem.Addr(fn.ByteOff), val.n); err != nil {
						t.Fatal(err)
					}
					if err := c.Heap().WriteCString(blk.Addr+mem.Addr(fs.ByteOff), 16, val.s); err != nil {
						t.Fatal(err)
					}
					shadow[si][name] = val
					break
				}
			}
		}
		if err := c.WUnlock(h); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		verify(round)

		// Mid-run server restart from checkpoint.
		if round == 5 {
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			srv, err = server.New(server.Options{CheckpointDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			ln, err = net.Listen("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			go func() { _ = srv.Serve(ln) }()
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
