package core

import (
	"sync"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/types"
)

// TestTxCommitAtomicVisibility commits two segments transactionally
// and verifies a concurrent reader, re-reading in a tight loop, only
// ever observes consistent (both-or-neither) states across the
// invariant "a.counter == b.counter".
func TestTxCommitAtomicVisibility(t *testing.T) {
	addr := startServer(t)
	segA, segB := addr+"/txa", addr+"/txb"

	w := newTestClient(t, arch.AMD64(), "w")
	ha, err := w.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := w.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	// Initialize both counters to zero, transactionally.
	if err := w.TxLock(ha, hb); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc(ha, types.Int32(), 1, "ctr"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc(hb, types.Int32(), 1, "ctr"); err != nil {
		t.Fatal(err)
	}
	if err := w.TxCommit(ha, hb); err != nil {
		t.Fatal(err)
	}

	r := newTestClient(t, arch.Sparc(), "r")
	ra, err := r.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Open(segB)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	var wg sync.WaitGroup
	stop := make(chan struct{})
	violations := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Read both segments under read locks; versions observed
			// must satisfy va == vb (the writer bumps them in
			// lockstep).
			if err := r.RLock(ra); err != nil {
				return
			}
			va := ra.Version()
			if err := r.RUnlock(ra); err != nil {
				return
			}
			if err := r.RLock(rb); err != nil {
				return
			}
			vb := rb.Version()
			if err := r.RUnlock(rb); err != nil {
				return
			}
			// Because B is read after A, B may be newer, never
			// older by more than the in-flight commit; with atomic
			// commits va <= vb+0 is guaranteed as both move
			// together: vb >= va-0 means vb >= va is not strictly
			// required, but vb may lag va only if a commit landed
			// between the reads — in which case vb < va by exactly
			// the commits in flight. What atomicity rules out is a
			// *lasting* skew; we detect one by re-checking.
			if vb < va {
				if err := r.RLock(rb); err != nil {
					return
				}
				vb2 := rb.Version()
				if err := r.RUnlock(rb); err != nil {
					return
				}
				if vb2 < va {
					select {
					case violations <- "segment B lastingly behind A after atomic commit":
					default:
					}
					return
				}
			}
		}
	}()

	wca, _ := ha.Mem().BlockByName("ctr")
	wcb, _ := hb.Mem().BlockByName("ctr")
	for i := 0; i < rounds; i++ {
		if err := w.TxLock(ha, hb); err != nil {
			t.Fatal(err)
		}
		if err := w.Heap().WriteI32(wca.Addr, int32(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := w.Heap().WriteI32(wcb.Addr, int32(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := w.TxCommit(ha, hb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case v := <-violations:
		t.Fatal(v)
	default:
	}

	// Final values agree everywhere.
	if err := r.RLock(ra); err != nil {
		t.Fatal(err)
	}
	ba, _ := ra.Mem().BlockByName("ctr")
	va, _ := r.Heap().ReadI32(ba.Addr)
	if err := r.RUnlock(ra); err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(rb); err != nil {
		t.Fatal(err)
	}
	bb, _ := rb.Mem().BlockByName("ctr")
	vb, _ := r.Heap().ReadI32(bb.Addr)
	if err := r.RUnlock(rb); err != nil {
		t.Fatal(err)
	}
	if va != rounds || vb != rounds {
		t.Errorf("final counters = %d, %d; want %d", va, vb, rounds)
	}
}

// TestTxCommitRollsBackOnFailure injects a failing part and checks
// that no segment advanced.
func TestTxCommitRollsBackOnFailure(t *testing.T) {
	addr := startServer(t)
	w := newTestClient(t, arch.AMD64(), "w")
	ha, err := w.Open(addr + "/ra")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := w.Open(addr + "/rb")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TxLock(ha, hb); err != nil {
		t.Fatal(err)
	}
	blkA, err := w.Alloc(ha, types.Int32(), 4, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc(hb, types.Int32(), 4, "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.TxCommit(ha, hb); err != nil {
		t.Fatal(err)
	}
	va, vb := ha.Version(), hb.Version()

	// Corrupt one part: write into segment B's block under lock,
	// then sabotage the collected diff by freeing a block the server
	// knows and re-using its serial... Simpler: send a raw duplicate
	// segment in the parts list via the same client is prevented
	// client-side, so instead commit with a stale lock state:
	// unlock B behind the transaction's back and commit both.
	if err := w.TxLock(ha, hb); err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(blkA.Addr, 99); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(hb); err != nil { // releases B's server lock
		t.Fatal(err)
	}
	if err := w.TxCommit(ha, hb); err == nil {
		t.Fatal("commit with a released lock succeeded")
	}
	// Neither segment advanced beyond B's plain unlock.
	r := newTestClient(t, arch.AMD64(), "r")
	hra, err := r.Open(addr + "/ra")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hra); err != nil {
		t.Fatal(err)
	}
	ba, _ := hra.Mem().BlockByName("a")
	v, _ := r.Heap().ReadI32(ba.Addr)
	if err := r.RUnlock(hra); err != nil {
		t.Fatal(err)
	}
	if v == 99 {
		t.Error("failed transaction leaked segment A's write")
	}
	if hra.Version() != va {
		t.Errorf("segment A at v%d, want v%d", hra.Version(), va)
	}
	_ = vb
}

// TestTxLockOrderingPreventsDeadlock runs two clients transacting
// over the same two segments in opposite argument orders.
func TestTxLockOrderingPreventsDeadlock(t *testing.T) {
	addr := startServer(t)
	segA, segB := addr+"/da", addr+"/db"
	setupC := newTestClient(t, arch.AMD64(), "setup")
	sa, err := setupC.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := setupC.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	if err := setupC.TxLock(sa, sb); err != nil {
		t.Fatal(err)
	}
	if _, err := setupC.Alloc(sa, types.Int32(), 1, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := setupC.Alloc(sb, types.Int32(), 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := setupC.TxCommit(sa, sb); err != nil {
		t.Fatal(err)
	}

	run := func(name string, flip bool) error {
		c, err := NewClient(Options{Profile: arch.AMD64(), Name: name})
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		ha, err := c.Open(segA)
		if err != nil {
			return err
		}
		hb, err := c.Open(segB)
		if err != nil {
			return err
		}
		first, second := ha, hb
		if flip {
			first, second = hb, ha
		}
		for i := 0; i < 10; i++ {
			if err := c.TxLock(first, second); err != nil {
				return err
			}
			for _, h := range []*Segment{ha, hb} {
				blk, _ := h.Mem().BlockByName("x")
				v, err := c.Heap().ReadI32(blk.Addr)
				if err != nil {
					return err
				}
				if err := c.Heap().WriteI32(blk.Addr, v+1); err != nil {
					return err
				}
			}
			if err := c.TxCommit(first, second); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make(chan error, 2)
	go func() { errs <- run("c1", false) }()
	go func() { errs <- run("c2", true) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Both counters saw all 20 increments.
	if err := setupC.RLock(sa); err != nil {
		t.Fatal(err)
	}
	blk, _ := sa.Mem().BlockByName("x")
	v, _ := setupC.Heap().ReadI32(blk.Addr)
	if err := setupC.RUnlock(sa); err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Errorf("counter = %d, want 20", v)
	}
}

// TestTxErrors covers the client-side validation.
func TestTxErrors(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/e")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TxCommit(); err == nil {
		t.Error("empty commit accepted")
	}
	if err := c.TxLock(); err == nil {
		t.Error("empty lock accepted")
	}
	if err := c.TxCommit(h); err == nil {
		t.Error("commit without lock accepted")
	}
}

// TestWUnlockRetryAfterSwizzleFailure exercises the documented
// recovery path: a write section containing a pointer to private
// (non-shared) memory fails to collect; the lock stays held so the
// application can repair the pointer and release again.
func TestWUnlockRetryAfterSwizzleFailure(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/sw")
	if err != nil {
		t.Fatal(err)
	}
	pi, err := types.PointerTo(types.Int32())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	pblk, err := c.Alloc(h, pi, 1, "p")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := c.Alloc(h, types.Int32(), 1, "t")
	if err != nil {
		t.Fatal(err)
	}
	// A pointer into the guard gap between subsegments: not shared.
	if err := c.Heap().WritePtr(pblk.Addr, pblk.Sub.End()+64); err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err == nil {
		t.Fatal("release with an unswizzlable pointer succeeded")
	}
	// The lock is still held: repair and retry.
	if err := c.Heap().WritePtr(pblk.Addr, tgt.Addr); err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatalf("retry after repair: %v", err)
	}
	if h.Version() != 1 {
		t.Errorf("version = %d, want 1", h.Version())
	}
}

// TestTxBankTransferConservation runs two clients making concurrent
// transactional transfers between accounts split across two segments
// while a reader repeatedly checks conservation of the total on
// version-consistent snapshots.
func TestTxBankTransferConservation(t *testing.T) {
	addr := startServer(t)
	segA, segB := addr+"/bankA", addr+"/bankB"
	const initial = 1000

	boot := newTestClient(t, arch.AMD64(), "boot")
	ba, err := boot.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := boot.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.TxLock(ba, bb); err != nil {
		t.Fatal(err)
	}
	accA, err := boot.Alloc(ba, types.Int64(), 1, "acct")
	if err != nil {
		t.Fatal(err)
	}
	accB, err := boot.Alloc(bb, types.Int64(), 1, "acct")
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.Heap().WriteI64(accA.Addr, initial); err != nil {
		t.Fatal(err)
	}
	if err := boot.Heap().WriteI64(accB.Addr, initial); err != nil {
		t.Fatal(err)
	}
	if err := boot.TxCommit(ba, bb); err != nil {
		t.Fatal(err)
	}

	transfer := func(name string, amount int64, rounds int) error {
		c, err := NewClient(Options{Profile: arch.AMD64(), Name: name})
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		ha, err := c.Open(segA)
		if err != nil {
			return err
		}
		hb, err := c.Open(segB)
		if err != nil {
			return err
		}
		for i := 0; i < rounds; i++ {
			if err := c.TxLock(ha, hb); err != nil {
				return err
			}
			blkA, _ := ha.Mem().BlockByName("acct")
			blkB, _ := hb.Mem().BlockByName("acct")
			va, err := c.Heap().ReadI64(blkA.Addr)
			if err != nil {
				return err
			}
			vb, err := c.Heap().ReadI64(blkB.Addr)
			if err != nil {
				return err
			}
			if err := c.Heap().WriteI64(blkA.Addr, va-amount); err != nil {
				return err
			}
			if err := c.Heap().WriteI64(blkB.Addr, vb+amount); err != nil {
				return err
			}
			if err := c.TxCommit(ha, hb); err != nil {
				return err
			}
		}
		return nil
	}

	done := make(chan error, 2)
	go func() { done <- transfer("t1", 7, 15) }()
	go func() { done <- transfer("t2", -3, 15) }()

	// Reader: conservation on version-matched snapshots.
	reader := newTestClient(t, arch.Sparc(), "r")
	ra, err := reader.Open(segA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := reader.Open(segB)
	if err != nil {
		t.Fatal(err)
	}
	checks := 0
	for finished := 0; finished < 2; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			finished++
		default:
			if err := reader.RLock(ra); err != nil {
				t.Fatal(err)
			}
			va := ra.Version()
			blkA, _ := ra.Mem().BlockByName("acct")
			sumA, _ := reader.Heap().ReadI64(blkA.Addr)
			if err := reader.RUnlock(ra); err != nil {
				t.Fatal(err)
			}
			if err := reader.RLock(rb); err != nil {
				t.Fatal(err)
			}
			vb := rb.Version()
			blkB, _ := rb.Mem().BlockByName("acct")
			sumB, _ := reader.Heap().ReadI64(blkB.Addr)
			if err := reader.RUnlock(rb); err != nil {
				t.Fatal(err)
			}
			// Transactions move both segments' versions in lockstep,
			// so equal versions identify one atomic snapshot.
			if va == vb {
				checks++
				if sumA+sumB != 2*initial {
					t.Fatalf("conservation violated at v%d: %d + %d != %d",
						va, sumA, sumB, 2*initial)
				}
			}
		}
	}
	if checks == 0 {
		t.Log("no version-matched snapshots observed (timing); invariant vacuous this run")
	}
	// Final state conserves the total.
	if err := reader.RLock(ra); err != nil {
		t.Fatal(err)
	}
	blkA, _ := ra.Mem().BlockByName("acct")
	sumA, _ := reader.Heap().ReadI64(blkA.Addr)
	if err := reader.RUnlock(ra); err != nil {
		t.Fatal(err)
	}
	if err := reader.RLock(rb); err != nil {
		t.Fatal(err)
	}
	blkB, _ := rb.Mem().BlockByName("acct")
	sumB, _ := reader.Heap().ReadI64(blkB.Addr)
	if err := reader.RUnlock(rb); err != nil {
		t.Fatal(err)
	}
	if sumA+sumB != 2*initial {
		t.Fatalf("final conservation violated: %d + %d", sumA, sumB)
	}
	if sumA != initial-15*7+15*3 {
		t.Errorf("account A = %d, want %d", sumA, initial-15*7+15*3)
	}
}
