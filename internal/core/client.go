// Package core implements the InterWeave client library — the
// paper's primary contribution. It maps cached copies of shared
// segments into a simulated local address space, tracks modifications
// with page twins, collects and applies machine-independent
// wire-format diffs at lock boundaries, swizzles pointers, and drives
// the relaxed-coherence protocol against InterWeave servers (paper
// Sections 2 and 3.1).
//
// A Client corresponds to one process linked against the InterWeave
// library: it owns a heap (the process address space), a set of
// cached segments, and one multiplexed TCP connection per server.
package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/mem"
	"interweave/internal/protocol"
	"interweave/internal/types"
)

// Options configures a Client.
type Options struct {
	// Profile is the simulated machine architecture; AMD64 if nil.
	Profile *arch.Profile
	// Name identifies the client to servers (diagnostics only).
	Name string
	// Dial overrides TCP dialing (tests, custom transports).
	Dial func(addr string) (net.Conn, error)
	// DefaultPolicy is the coherence policy used by segments that
	// never called SetPolicy; Full() if unset.
	DefaultPolicy coherence.Policy
	// NoDiffOn is the modified fraction at which a segment switches
	// to no-diff mode (default 0.75); NoDiffOff disables the switch
	// entirely when negative.
	NoDiffOn float64
	// NoDiffResample is how many no-diff critical sections pass
	// before one diffing section re-samples application behaviour
	// (default 8).
	NoDiffResample int
}

// Client is one InterWeave client process.
type Client struct {
	mu      sync.Mutex
	cond    *sync.Cond
	prof    *arch.Profile
	heap    *mem.Heap
	opts    Options
	conns   map[string]*serverConn
	segs    map[string]*segment
	layouts types.Cache
	closed  bool
}

// NewClient returns a client with an empty heap.
func NewClient(opts Options) (*Client, error) {
	if opts.Profile == nil {
		opts.Profile = arch.AMD64()
	}
	if opts.DefaultPolicy.Model == coherence.ModelInvalid {
		opts.DefaultPolicy = coherence.Full()
	}
	if err := opts.DefaultPolicy.Validate(); err != nil {
		return nil, err
	}
	if opts.NoDiffOn == 0 {
		opts.NoDiffOn = 0.75
	}
	if opts.NoDiffResample <= 0 {
		opts.NoDiffResample = 8
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}
	}
	h, err := mem.NewHeap(opts.Profile)
	if err != nil {
		return nil, err
	}
	c := &Client{
		prof:  opts.Profile,
		heap:  h,
		opts:  opts,
		conns: make(map[string]*serverConn),
		segs:  make(map[string]*segment),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Heap exposes the client's simulated address space for typed reads
// and writes. Access shared data only under the protection of
// reader-writer locks, as the paper requires.
func (c *Client) Heap() *mem.Heap { return c.heap }

// Profile returns the client's machine profile.
func (c *Client) Profile() *arch.Profile { return c.prof }

// Close releases all server connections. Segments remain readable
// locally but can no longer be locked or updated.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	var first error
	for _, sc := range conns {
		if err := sc.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// serverAddrOf extracts the server address from a segment URL of the
// form "host:port/path".
func serverAddrOf(segName string) (string, error) {
	i := strings.IndexByte(segName, '/')
	if i <= 0 || i == len(segName)-1 {
		return "", fmt.Errorf("core: segment URL %q is not host/path", segName)
	}
	return segName[:i], nil
}

// connFor returns (dialing if necessary) the multiplexed connection
// to the server managing segName. Callers must hold c.mu; the dial
// happens with the lock released.
func (c *Client) connFor(segName string) (*serverConn, error) {
	addr, err := serverAddrOf(segName)
	if err != nil {
		return nil, err
	}
	if sc, ok := c.conns[addr]; ok && !sc.isClosed() {
		return sc, nil
	}
	c.mu.Unlock()
	conn, err := c.opts.Dial(addr)
	c.mu.Lock()
	if err != nil {
		return nil, fmt.Errorf("core: connecting to %s: %w", addr, err)
	}
	if c.closed {
		_ = conn.Close()
		return nil, errors.New("core: client closed")
	}
	if sc, ok := c.conns[addr]; ok && !sc.isClosed() {
		// Someone else won the race; use theirs.
		_ = conn.Close()
		return sc, nil
	}
	sc := newServerConn(conn, c.onNotify)
	c.conns[addr] = sc
	// Introduce ourselves; failure here surfaces on first real call.
	go func() {
		_, err := sc.call(&protocol.Hello{ClientName: c.opts.Name, Profile: c.prof.Name})
		if err != nil {
			_ = sc.close()
		}
	}()
	return sc, nil
}

// callSeg issues a request against a segment's server, re-dialing
// once when the cached connection has died (e.g. after a server
// restart from a checkpoint). Lock and subscription state held by the
// old server instance is gone, so the segment's subscription is
// dropped; its cached data remains valid and is re-validated by
// version number on the next lock. Caller holds c.mu.
func (c *Client) callSeg(s *segment, m protocol.Message) (protocol.Message, error) {
	reply, err := s.conn.call(m)
	if err == nil || !s.conn.isClosed() {
		return reply, err
	}
	sc, derr := c.connFor(s.name)
	if derr != nil {
		return nil, fmt.Errorf("core: reconnecting to server of %q: %w (original: %v)", s.name, derr, err)
	}
	s.conn = sc
	s.state.Subscribed = false
	s.state.Invalidated = false
	return sc.call(m)
}

// onNotify handles server-pushed invalidations.
func (c *Client) onNotify(segName string, version uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.segs[segName]; ok {
		s.state.Invalidated = true
		s.notifiedVersion = version
	}
}

// serverConn multiplexes synchronous calls and asynchronous
// notifications over one TCP connection — the cached connection of
// the paper's segment table.
type serverConn struct {
	conn   net.Conn
	notify func(seg string, version uint32)

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan protocol.Message
	err     error
	closed  bool
}

func newServerConn(conn net.Conn, notify func(string, uint32)) *serverConn {
	sc := &serverConn{
		conn:    conn,
		notify:  notify,
		nextID:  1,
		pending: make(map[uint32]chan protocol.Message),
	}
	go sc.readLoop()
	return sc
}

func (sc *serverConn) readLoop() {
	for {
		id, msg, err := protocol.ReadFrame(sc.conn)
		if err != nil {
			sc.fail(err)
			return
		}
		if id == 0 {
			if n, ok := msg.(*protocol.Notify); ok && sc.notify != nil {
				// Dispatch asynchronously: the client may be holding
				// its mutex while waiting for a reply on this very
				// connection, and invalidation order is immaterial.
				go sc.notify(n.Seg, n.Version)
			}
			continue
		}
		sc.mu.Lock()
		ch, ok := sc.pending[id]
		delete(sc.pending, id)
		sc.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

func (sc *serverConn) fail(err error) {
	sc.mu.Lock()
	if sc.err == nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("core: server connection closed")
		}
		sc.err = err
	}
	sc.closed = true
	pending := sc.pending
	sc.pending = make(map[uint32]chan protocol.Message)
	sc.mu.Unlock()
	_ = sc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

func (sc *serverConn) isClosed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

func (sc *serverConn) close() error {
	sc.fail(errors.New("core: connection closed by client"))
	return nil
}

// call sends one request and waits for its reply. ErrorReply payloads
// are returned as errors.
func (sc *serverConn) call(m protocol.Message) (protocol.Message, error) {
	sc.mu.Lock()
	if sc.closed {
		err := sc.err
		sc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	id := sc.nextID
	sc.nextID++
	if sc.nextID == 0 {
		sc.nextID = 1
	}
	ch := make(chan protocol.Message, 1)
	sc.pending[id] = ch
	err := protocol.WriteFrame(sc.conn, id, m)
	sc.mu.Unlock()
	if err != nil {
		sc.fail(err)
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		sc.mu.Lock()
		err := sc.err
		sc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	if e, isErr := reply.(*protocol.ErrorReply); isErr {
		return nil, e
	}
	return reply, nil
}
