// Package core implements the InterWeave client library — the
// paper's primary contribution. It maps cached copies of shared
// segments into a simulated local address space, tracks modifications
// with page twins, collects and applies machine-independent
// wire-format diffs at lock boundaries, swizzles pointers, and drives
// the relaxed-coherence protocol against InterWeave servers (paper
// Sections 2 and 3.1).
//
// A Client corresponds to one process linked against the InterWeave
// library: it owns a heap (the process address space), a set of
// cached segments, and one multiplexed TCP connection per server.
package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interweave/internal/arch"
	"interweave/internal/cluster"
	"interweave/internal/coherence"
	"interweave/internal/mem"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/types"
)

// Options configures a Client.
type Options struct {
	// Profile is the simulated machine architecture; AMD64 if nil.
	Profile *arch.Profile
	// Name identifies the client to servers (diagnostics only).
	Name string
	// ProxyAddr, when non-empty, marks this client as a read fan-out
	// proxy (DESIGN.md §11): connections introduce themselves with
	// ProxyHello instead of Hello, carrying this address — the proxy's
	// own downstream-facing listen address — so servers can exempt the
	// session from MaxSessions admission and advertise the role.
	ProxyAddr string
	// Dial overrides TCP dialing (tests, custom transports).
	Dial func(addr string) (net.Conn, error)
	// DefaultPolicy is the coherence policy used by segments that
	// never called SetPolicy; Full() if unset.
	DefaultPolicy coherence.Policy
	// NoDiffOn is the modified fraction at which a segment switches
	// to no-diff mode (default 0.75); NoDiffOff disables the switch
	// entirely when negative.
	NoDiffOn float64
	// NoDiffResample is how many no-diff critical sections pass
	// before one diffing section re-samples application behaviour
	// (default 8).
	NoDiffResample int
	// DialTimeout bounds each TCP dial attempt (default 10s).
	// Ignored when Dial is set.
	DialTimeout time.Duration
	// RPCTimeout bounds the round trip of RPCs that the server
	// answers immediately. Lock-acquisition RPCs (ReadLock,
	// WriteLock, TxCommit) are exempt: they may legitimately queue
	// behind another client's writer for an unbounded time. Zero
	// disables the timeout. A timed-out connection is failed — the
	// multiplexed stream behind it can no longer be trusted.
	RPCTimeout time.Duration
	// MaxRetries is how many times a transport-failed retryable RPC
	// is retried after reconnecting (default 3; negative disables
	// retries entirely).
	MaxRetries int
	// RetryBackoff is the delay before the first retry; subsequent
	// retries back off exponentially with jitter (default 25ms).
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff (default 1s).
	RetryMaxBackoff time.Duration
	// Metrics, when non-nil, receives the client's counters and
	// histograms (OBSERVABILITY.md catalogues them). A nil registry
	// disables instrumentation entirely — no clocks are read and no
	// atomics are touched on the hot paths.
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured events (retries,
	// degraded reads, release recovery) synchronously on the emitting
	// goroutine. Meant for tests asserting behaviour; must be fast.
	Trace obs.TraceFunc
	// Tracer, when non-nil, records a distributed span per lock
	// operation, with child spans per RPC attempt whose context rides
	// the wire so server-side work links into the same trace. A nil
	// tracer disables span tracing entirely — no clock reads and no
	// allocations on the hot paths.
	Tracer *obs.Tracer
	// OnNotify, when non-nil, receives every server-pushed Notify in
	// addition to the client's own invalidation bookkeeping. It runs on
	// the notify goroutine with no client lock held, so it may call back
	// into the Client. The proxy tier uses it to trigger mirror pulls
	// for segments it subscribed to with Forward rather than Open.
	OnNotify func(seg string, version uint32)
}

// Client is one InterWeave client process.
type Client struct {
	mu      sync.Mutex
	cond    *sync.Cond
	prof    *arch.Profile
	heap    *mem.Heap
	opts    Options
	conns   map[string]*serverConn
	segs    map[string]*segment
	layouts types.Cache
	closed  bool

	// Cluster routing state (route.go): per-segment owner routes
	// learned from redirects, and the newest membership seen, with the
	// ring built from it. Nil ms/ring means the client has never
	// talked to a clustered server.
	routes map[string]string
	ms     *protocol.Membership
	ring   *cluster.Ring

	// writerID identifies this client instance in WriteUnlock
	// requests; together with a per-release sequence number it lets
	// the server deduplicate retried releases (at-most-once).
	writerID string
	// staleReads counts read locks granted from the cache because the
	// server was unreachable and the coherence policy tolerated it.
	staleReads atomic.Uint64

	// ins holds the metric handles when Options.Metrics was set; nil
	// means instrumentation is disabled.
	ins *clientInstruments
	// traceFn is Options.Trace (nil when tracing is disabled).
	traceFn obs.TraceFunc
	// tracer is Options.Tracer (nil when span tracing is disabled).
	tracer *obs.Tracer
}

// clientSeq distinguishes writer IDs of clients created by one
// process (tests routinely run several).
var clientSeq atomic.Uint64

// NewClient returns a client with an empty heap.
func NewClient(opts Options) (*Client, error) {
	if opts.Profile == nil {
		opts.Profile = arch.AMD64()
	}
	if opts.DefaultPolicy.Model == coherence.ModelInvalid {
		opts.DefaultPolicy = coherence.Full()
	}
	if err := opts.DefaultPolicy.Validate(); err != nil {
		return nil, err
	}
	if opts.NoDiffOn == 0 {
		opts.NoDiffOn = 0.75
	}
	if opts.NoDiffResample <= 0 {
		opts.NoDiffResample = 8
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.Dial == nil {
		dt := opts.DialTimeout
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, dt)
		}
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	if opts.RetryMaxBackoff <= 0 {
		opts.RetryMaxBackoff = time.Second
	}
	h, err := mem.NewHeap(opts.Profile)
	if err != nil {
		return nil, err
	}
	c := &Client{
		prof:     opts.Profile,
		heap:     h,
		opts:     opts,
		conns:    make(map[string]*serverConn),
		segs:     make(map[string]*segment),
		routes:   make(map[string]string),
		writerID: fmt.Sprintf("%s/%d/%d", opts.Name, os.Getpid(), clientSeq.Add(1)),
		traceFn:  opts.Trace,
		tracer:   opts.Tracer,
	}
	if opts.Metrics != nil {
		c.ins = newClientInstruments(opts.Metrics)
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// StaleReads reports how many read locks were granted from the cache
// because the server was unreachable (graceful degradation under
// relaxed coherence).
func (c *Client) StaleReads() uint64 { return c.staleReads.Load() }

// Heap exposes the client's simulated address space for typed reads
// and writes. Access shared data only under the protection of
// reader-writer locks, as the paper requires.
func (c *Client) Heap() *mem.Heap { return c.heap }

// Profile returns the client's machine profile.
func (c *Client) Profile() *arch.Profile { return c.prof }

// Close releases all server connections. Segments remain readable
// locally but can no longer be locked or updated.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	var first error
	for _, sc := range conns {
		if err := sc.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// serverAddrOf extracts the server address from a segment URL of the
// form "host:port/path".
func serverAddrOf(segName string) (string, error) {
	i := strings.IndexByte(segName, '/')
	if i <= 0 || i == len(segName)-1 {
		return "", fmt.Errorf("core: segment URL %q is not host/path", segName)
	}
	return segName[:i], nil
}

// connFor returns (dialing if necessary) the multiplexed connection
// to the server managing segName — the redirect-learned owner when
// one is cached, the URL's home server otherwise. Callers must hold
// c.mu; the dial happens with the lock released.
func (c *Client) connFor(segName string) (*serverConn, error) {
	addr, err := c.addrFor(segName)
	if err != nil {
		return nil, err
	}
	return c.connTo(addr)
}

// connTo returns (dialing if necessary) the multiplexed connection to
// one server address. Callers must hold c.mu; the dial happens with
// the lock released. Dial failures carry ErrUnavailable so callers
// can surface a typed error once retries are spent.
func (c *Client) connTo(addr string) (*serverConn, error) {
	if sc, ok := c.conns[addr]; ok && !sc.isClosed() {
		return sc, nil
	}
	c.mu.Unlock()
	conn, err := c.opts.Dial(addr)
	c.mu.Lock()
	if err != nil {
		return nil, fmt.Errorf("core: connecting to %s: %w (%v)", addr, ErrUnavailable, err)
	}
	if c.closed {
		_ = conn.Close()
		return nil, errors.New("core: client closed")
	}
	if sc, ok := c.conns[addr]; ok && !sc.isClosed() {
		// Someone else won the race; use theirs.
		_ = conn.Close()
		return sc, nil
	}
	sc := newServerConn(conn, addr, c.onNotify)
	c.conns[addr] = sc
	if c.ins != nil {
		c.ins.dials.Inc()
	}
	// Introduce ourselves; failure here surfaces on first real call.
	// Proxies introduce with ProxyHello so the server exempts the
	// session from MaxSessions admission (DESIGN.md §11). The intro
	// frame is written synchronously — it must be the session-creating
	// frame at the server, ahead of any concurrent first RPC, or the
	// exemption is lost to a race — but its reply is drained in the
	// background so dialing stays one write, not a round trip.
	var intro protocol.Message = &protocol.Hello{ClientName: c.opts.Name, Profile: c.prof.Name}
	if c.opts.ProxyAddr != "" {
		intro = &protocol.ProxyHello{ProxyAddr: c.opts.ProxyAddr, Name: c.opts.Name}
	}
	sc.send(intro)
	return sc, nil
}

// callSeg issues a request against a segment's server, re-dialing
// when the cached connection has died (e.g. after a server restart
// from a checkpoint) and retrying transport failures of retryable
// RPCs with bounded exponential backoff + jitter. Lock and
// subscription state held by the old server instance is gone, so the
// segment's subscription is dropped on reconnect; its cached data
// remains valid and is re-validated by version number on the next
// lock. Non-retryable RPCs (WriteUnlock, TxCommit) get at most one
// send per call — their recovery runs at a higher level (Resume) —
// but dial failures are retried for every RPC kind: a request that
// never reached a server cannot have been applied, so rerouting and
// redialing is always safe. Caller holds c.mu.
// The span, when non-nil, parents one child span per RPC attempt
// whose context rides the wire.
func (c *Client) callSeg(s *segment, m protocol.Message, sp *obs.Span) (protocol.Message, error) {
	var lastErr error
	hops := 0
	for attempt := 0; ; attempt++ {
		if s.conn == nil || s.conn.isClosed() {
			sc, derr := c.connFor(s.name)
			if derr != nil {
				lastErr = fmt.Errorf("core: reconnecting to server of %q: %w", s.name, derr)
				// Nothing was sent, so even WriteUnlock/TxCommit can
				// safely reroute and redial.
				if attempt < c.opts.MaxRetries {
					c.rerouteSeg(s.name)
					if c.retryPause(m, attempt, lastErr) {
						continue
					}
				}
				return nil, lastErr
			}
			s.conn = sc
			s.state.Subscribed = false
			s.state.Invalidated = false
		}
		reply, err := c.callObserved(s.conn, m, sp, attempt)
		if err == nil {
			if red, ok := reply.(*protocol.Redirect); ok {
				// Not a failure: the server we asked does not own the
				// segment (any RPC kind, WriteUnlock included, was
				// refused un-applied). Follow to the owner.
				if rerr := c.followRedirect(s.name, s.conn.addr, red, &hops); rerr != nil {
					return nil, rerr
				}
				s.conn = nil // repoint to the new route next spin
				attempt--    // a redirect is not a failure; keep the retry budget
				continue
			}
			return reply, nil
		}
		if !isTransport(err) {
			return reply, err
		}
		lastErr = err
		if !retryable(m) || attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		c.rerouteSeg(s.name)
		if !c.retryPause(m, attempt, err) {
			return nil, lastErr
		}
	}
}

// callRetry issues a request against the server addressed by segName
// before any segment state exists (the open path), with the same
// backoff-retry behaviour as callSeg. Caller holds c.mu.
func (c *Client) callRetry(segName string, m protocol.Message, sp *obs.Span) (protocol.Message, error) {
	var lastErr error
	hops := 0
	for attempt := 0; ; attempt++ {
		sc, err := c.connFor(segName)
		dialFailed := err != nil
		if dialFailed {
			lastErr = err
		} else {
			reply, err := c.callObserved(sc, m, sp, attempt)
			if err == nil {
				if red, ok := reply.(*protocol.Redirect); ok {
					if rerr := c.followRedirect(segName, sc.addr, red, &hops); rerr != nil {
						return nil, rerr
					}
					attempt-- // a redirect is not a failure; keep the retry budget
					continue
				}
				return reply, nil
			}
			if !isTransport(err) {
				return reply, err
			}
			lastErr = err
		}
		// Dial failures retry for every RPC kind (nothing was sent);
		// transport failures after a send only for retryable ones.
		if (!dialFailed && !retryable(m)) || attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		c.rerouteSeg(segName)
		if !c.retryPause(m, attempt, lastErr) {
			return nil, lastErr
		}
	}
}

// callObserved performs one RPC round trip through sc, recording
// latency (healthy round trips, including server-reported errors) or
// a transport error when metrics are enabled. When sp is non-nil, the
// round trip gets its own child span — one per attempt, so retries
// appear as sibling spans — and the child's context is attached to
// the outgoing frame for the server to join. All span work is gated
// on sp, keeping the nil-tracer path free of clock reads and
// allocations (rpcName formats).
func (c *Client) callObserved(sc *serverConn, m protocol.Message, sp *obs.Span, attempt int) (protocol.Message, error) {
	var asp *obs.Span
	var tc protocol.TraceContext
	if sp != nil {
		asp = sp.Child("rpc." + rpcName(m))
		asp.AttrInt("attempt", int64(attempt))
		sctx := asp.Context()
		tc = protocol.TraceContext{TraceID: sctx.TraceID, SpanID: sctx.SpanID}
	}
	if c.ins == nil {
		reply, err := sc.callT(m, c.timeoutFor(m), tc)
		endRPCSpan(asp, err)
		return reply, wrapShed(err)
	}
	rpc := rpcName(m)
	start := time.Now()
	reply, err := sc.callT(m, c.timeoutFor(m), tc)
	if err != nil && isTransport(err) {
		c.ins.transportErrors(rpc).Inc()
	} else {
		c.ins.latency(rpc).ObserveSince(start)
	}
	endRPCSpan(asp, err)
	return reply, wrapShed(err)
}

// wrapShed marks server admission refusals with the typed
// ErrOverloaded (the ErrorReply stays in the chain, so code
// introspection and isTransport still work).
func wrapShed(err error) error {
	if err != nil && errCode(err) == protocol.CodeOverloaded {
		return fmt.Errorf("%w: %w", ErrOverloaded, err)
	}
	return err
}

// endRPCSpan closes an attempt span, recording the error when the
// round trip failed (transport death and server-reported errors
// alike).
func endRPCSpan(sp *obs.Span, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.Error(err)
	}
	sp.End()
}

// retryPause records the retry (metrics + trace) and sleeps out the
// backoff; it reports false when the client was closed meanwhile.
func (c *Client) retryPause(m protocol.Message, attempt int, cause error) bool {
	if c.ins != nil || c.traceFn != nil {
		rpc := rpcName(m)
		if c.ins != nil {
			c.ins.retries(rpc).Inc()
		}
		ev := obs.Event{Name: "rpc.retry", RPC: rpc, Attempt: attempt}
		if cause != nil {
			ev.Err = cause.Error()
		}
		c.trace(ev)
	}
	return c.sleepRetry(attempt)
}

// retryable reports whether a transport-failed RPC may safely be sent
// again. Everything on the read/lock path is idempotent: locks are
// keyed to the session (a dead session's locks are released by the
// server), polls and opens are pure queries, and Resume is a pure
// probe. WriteUnlock and TxCommit mutate the segment and must not be
// blindly resent — a lost reply leaves the first send possibly
// applied; WUnlock recovers via the Resume protocol instead.
func retryable(m protocol.Message) bool {
	switch m.(type) {
	case *protocol.Hello, *protocol.OpenSegment, *protocol.ReadLock,
		*protocol.WriteLock, *protocol.ReadUnlock,
		*protocol.Subscribe, *protocol.Unsubscribe, *protocol.Resume:
		return true
	}
	return false
}

// isTransport distinguishes connection failures (retry material) from
// server-reported errors, which arrived on a healthy stream.
func isTransport(err error) bool {
	var er *protocol.ErrorReply
	return !errors.As(err, &er)
}

// errCode extracts the server-reported error code, or 0 for transport
// errors.
func errCode(err error) uint16 {
	var er *protocol.ErrorReply
	if errors.As(err, &er) {
		return er.Code
	}
	return 0
}

// timeoutFor bounds RPCs the server answers immediately. WriteLock
// and TxCommit are exempt: they may queue behind another client's
// writer for an unbounded, legitimate time. ReadLock is bounded —
// readers are never queued, they just receive the current version.
func (c *Client) timeoutFor(m protocol.Message) time.Duration {
	switch m.(type) {
	case *protocol.WriteLock, *protocol.TxCommit:
		return 0
	}
	return c.opts.RPCTimeout
}

// sleepRetry waits out the backoff for the given attempt with c.mu
// released, reporting false when the client was closed meanwhile.
func (c *Client) sleepRetry(attempt int) bool {
	d := c.opts.RetryBackoff << uint(attempt)
	if d <= 0 || d > c.opts.RetryMaxBackoff {
		d = c.opts.RetryMaxBackoff
	}
	// Full jitter over [d/2, d] decorrelates clients retrying after a
	// shared fault (e.g. a server restart).
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	time.Sleep(d)
	c.mu.Lock()
	return !c.closed
}

// onNotify handles server-pushed invalidations.
func (c *Client) onNotify(segName string, version uint32) {
	c.mu.Lock()
	if s, ok := c.segs[segName]; ok {
		s.state.Invalidated = true
		s.notifiedVersion = version
	}
	fn := c.opts.OnNotify
	c.mu.Unlock()
	if fn != nil {
		fn(segName, version)
	}
}

// serverConn multiplexes synchronous calls and asynchronous
// notifications over one TCP connection — the cached connection of
// the paper's segment table.
type serverConn struct {
	conn net.Conn
	// addr is the server address this connection was dialed for —
	// the pool key, which redirect handling uses to identify the
	// server a reply actually came from.
	addr   string
	notify func(seg string, version uint32)

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan protocol.Message
	err     error
	closed  bool
}

func newServerConn(conn net.Conn, addr string, notify func(string, uint32)) *serverConn {
	sc := &serverConn{
		conn:    conn,
		addr:    addr,
		notify:  notify,
		nextID:  1,
		pending: make(map[uint32]chan protocol.Message),
	}
	go sc.readLoop()
	return sc
}

func (sc *serverConn) readLoop() {
	for {
		id, msg, err := protocol.ReadFrame(sc.conn)
		if err != nil {
			sc.fail(err)
			return
		}
		if id == 0 {
			if n, ok := msg.(*protocol.Notify); ok && sc.notify != nil {
				// Dispatch asynchronously: the client may be holding
				// its mutex while waiting for a reply on this very
				// connection, and invalidation order is immaterial.
				go sc.notify(n.Seg, n.Version)
			}
			continue
		}
		sc.mu.Lock()
		ch, ok := sc.pending[id]
		delete(sc.pending, id)
		sc.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

func (sc *serverConn) fail(err error) {
	sc.mu.Lock()
	if sc.err == nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("core: server connection closed")
		}
		sc.err = err
	}
	sc.closed = true
	pending := sc.pending
	sc.pending = make(map[uint32]chan protocol.Message)
	sc.mu.Unlock()
	_ = sc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

func (sc *serverConn) isClosed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

func (sc *serverConn) close() error {
	sc.fail(errors.New("core: connection closed by client"))
	return nil
}

// call sends one request and waits for its reply. ErrorReply payloads
// are returned as errors.
func (sc *serverConn) call(m protocol.Message) (protocol.Message, error) {
	return sc.callT(m, 0, protocol.TraceContext{})
}

// send writes one request synchronously but drains its reply in the
// background, closing the connection if the server answered with an
// error. Used for the Hello/ProxyHello introduction, whose frame must
// precede any later call's on the wire (later calls serialize behind
// the same write path under sc.mu) without costing a round trip.
func (sc *serverConn) send(m protocol.Message) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	id := sc.nextID
	sc.nextID++
	if sc.nextID == 0 {
		sc.nextID = 1
	}
	ch := make(chan protocol.Message, 1)
	sc.pending[id] = ch
	err := protocol.WriteFrameCtx(sc.conn, id, m, protocol.TraceContext{})
	sc.mu.Unlock()
	if err != nil {
		sc.fail(err)
		return
	}
	go func() {
		if reply, ok := <-ch; ok {
			if _, isErr := reply.(*protocol.ErrorReply); isErr {
				_ = sc.close()
			}
		}
	}()
}

// callT is call with an optional timeout and an optional trace
// context to attach to the outgoing frame (a zero context sends the
// classic frame format). A timeout fails the whole connection:
// replies on a multiplexed stream arrive in server order, so once one
// is overdue the stream's state is unknowable and every later reply
// suspect.
func (sc *serverConn) callT(m protocol.Message, timeout time.Duration, tc protocol.TraceContext) (protocol.Message, error) {
	sc.mu.Lock()
	if sc.closed {
		err := sc.err
		sc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	id := sc.nextID
	sc.nextID++
	if sc.nextID == 0 {
		sc.nextID = 1
	}
	ch := make(chan protocol.Message, 1)
	sc.pending[id] = ch
	err := protocol.WriteFrameCtx(sc.conn, id, m, tc)
	sc.mu.Unlock()
	if err != nil {
		sc.fail(err)
		return nil, err
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	var reply protocol.Message
	var ok bool
	select {
	case reply, ok = <-ch:
	case <-timeoutCh:
		sc.fail(fmt.Errorf("core: %T RPC timed out after %v", m, timeout))
		// The reply may have raced in before fail closed the channel.
		reply, ok = <-ch
	}
	if !ok {
		sc.mu.Lock()
		err := sc.err
		sc.mu.Unlock()
		if err == nil {
			err = errors.New("core: connection closed")
		}
		return nil, err
	}
	if e, isErr := reply.(*protocol.ErrorReply); isErr {
		return nil, e
	}
	return reply, nil
}
