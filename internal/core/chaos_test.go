package core

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/faultnet"
	"interweave/internal/mem"
	"interweave/internal/obs"
	"interweave/internal/server"
	"interweave/internal/types"
)

// counterSum totals a counter family across its label instances in a
// registry snapshot.
func counterSum(snap obs.Snapshot, family string) uint64 {
	var n uint64
	for key, v := range snap.Counters {
		if key == family || strings.HasPrefix(key, family+"{") {
			n += v
		}
	}
	return n
}

// eventLog is a concurrency-safe obs.TraceFunc recorder.
type eventLog struct {
	mu     sync.Mutex
	events []obs.Event
}

func (l *eventLog) record(ev obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// count returns how many recorded events carry the given name.
func (l *eventLog) count(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Name == name {
			n++
		}
	}
	return n
}

// find returns the first recorded event with the given name.
func (l *eventLog) find(name string) (obs.Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Name == name {
			return ev, true
		}
	}
	return obs.Event{}, false
}

// startChaosServer is startServer, but also returns the handle so
// tests can inspect the authoritative segment state.
func startChaosServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

func startChaosProxy(t *testing.T, target string, sched *faultnet.Schedule) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.NewProxy(target, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// fastRetry is the client tuning chaos tests run with: real retry
// machinery, but with backoff measured in milliseconds.
func fastRetry(name string) Options {
	return Options{
		Profile:         arch.AMD64(),
		Name:            name,
		MaxRetries:      8,
		RetryBackoff:    2 * time.Millisecond,
		RetryMaxBackoff: 25 * time.Millisecond,
	}
}

func newChaosClient(t *testing.T, opts Options) *Client {
	t.Helper()
	c, err := NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// armOnce returns a When predicate that fires on the first chunk
// after arm is set, exactly once — the hook tests use to kill a
// connection at a protocol-defined instant.
func armOnce(arm *atomic.Bool) func(int, faultnet.Direction, int64, []byte) bool {
	return func(int, faultnet.Direction, int64, []byte) bool {
		return arm.CompareAndSwap(true, false)
	}
}

// appRetry redoes a whole critical section until it sticks: chaos
// can exhaust the client's transport retries or abandon a release
// with ErrWriteConflict, and the application-level answer in both
// cases is to run the section again.
func appRetry(op func() error) error {
	var err error
	for attempt := 0; attempt < 60; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return err
}

// serverBytes renders a segment's authoritative content as the wire
// encoding of a from-scratch diff, the canonical form runs are
// compared in.
func serverBytes(t *testing.T, srv *server.Server, name string) []byte {
	t.Helper()
	seg := srv.SegmentSnapshot(name)
	if seg == nil {
		t.Fatalf("server has no segment %q", name)
	}
	d, err := seg.CollectDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	return d.Marshal(nil)
}

// chaosAccWorkload is the acceptance sequence from the issue:
// Open → WLock → write → WUnlock → RLock. The second release is the
// one a schedule may kill mid-RPC (the test arms the rule just
// before it). Returns the server-side segment bytes afterwards.
func chaosAccWorkload(t *testing.T, srv *server.Server, segName string, arm *atomic.Bool, reg *obs.Registry, trace obs.TraceFunc) []byte {
	t.Helper()
	opts := fastRetry("acc")
	opts.Metrics = reg
	opts.Trace = trace
	c := newChaosClient(t, opts)
	h, err := c.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := c.Alloc(h, types.Int32(), 4, "vals")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Heap().WriteI32(blk.Addr+mem.Addr(4*i), int32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}

	// The release under fire.
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Heap().WriteI32(blk.Addr+mem.Addr(4*i), int32(10*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if arm != nil {
		arm.Store(true)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatalf("write unlock under fault: %v", err)
	}

	if err := c.RLock(h); err != nil {
		t.Fatalf("read lock after recovery: %v", err)
	}
	for i := 0; i < 4; i++ {
		v, err := c.Heap().ReadI32(blk.Addr + mem.Addr(4*i))
		if err != nil {
			t.Fatal(err)
		}
		if want := int32(10 * (i + 1)); v != want {
			t.Errorf("vals[%d] = %d, want %d", i, v, want)
		}
	}
	if err := c.RUnlock(h); err != nil {
		t.Fatal(err)
	}
	return serverBytes(t, srv, segName)
}

// TestChaosAcceptanceMidRPCReset is the issue's acceptance scenario:
// a client behind a fault proxy whose connection is reset in the
// middle of the release RPC must still complete
// Open → WLock → write → WUnlock → RLock through backoff-retry, and
// the server must end up holding exactly the bytes of a fault-free
// run. Both fault points are covered: the request lost before the
// server sees it (Up) and the reply lost after the server applied it
// (Down) — the latter is where at-most-once matters.
func TestChaosAcceptanceMidRPCReset(t *testing.T) {
	for _, tc := range []struct {
		name string
		dir  faultnet.Direction
	}{
		{"request-lost", faultnet.Up},
		{"reply-lost", faultnet.Down},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, addr := startChaosServer(t)
			sched := faultnet.NewSchedule()
			var arm atomic.Bool
			sched.AddRule(faultnet.Rule{Dir: tc.dir, Op: faultnet.OpReset, When: armOnce(&arm)})
			p := startChaosProxy(t, addr, sched)
			reg := obs.NewRegistry()
			var events eventLog
			got := chaosAccWorkload(t, srv, p.Addr()+"/acc", &arm, reg, events.record)

			if n := sched.Stats().Resets; n != 1 {
				t.Fatalf("schedule fired %d resets, want exactly 1", n)
			}

			// The observability layer must have seen the recovery: the
			// killed RPC is a transport error, and the release is
			// resolved through the Resume protocol, traced as
			// wunlock.recover plus an outcome event telling the two
			// fault points apart.
			snap := reg.Snapshot()
			if n := counterSum(snap, "iw_client_rpc_transport_errors_total"); n < 1 {
				t.Errorf("transport-error counters total %d, want >= 1", n)
			}
			if _, ok := events.find("wunlock.recover"); !ok {
				t.Error("no wunlock.recover trace event recorded")
			}
			switch tc.dir {
			case faultnet.Up:
				// Request lost before the server saw it: the probe finds
				// nothing applied and the identical release is resent.
				if _, ok := events.find("wunlock.resent"); !ok {
					t.Error("no wunlock.resent trace event for lost request")
				}
			case faultnet.Down:
				// Reply lost after the server applied the release: the
				// probe finds it applied and nothing is resent.
				if _, ok := events.find("wunlock.recover-applied"); !ok {
					t.Error("no wunlock.recover-applied trace event for lost reply")
				}
				if _, ok := events.find("wunlock.resent"); ok {
					t.Error("lost-reply recovery resent the release")
				}
			}

			// Fault-free twin run on its own server, also instrumented:
			// it must record no transport errors or retries at all.
			srv2, addr2 := startChaosServer(t)
			cleanReg := obs.NewRegistry()
			want := chaosAccWorkload(t, srv2, addr2+"/acc", nil, cleanReg, nil)
			cleanSnap := cleanReg.Snapshot()
			if n := counterSum(cleanSnap, "iw_client_rpc_transport_errors_total"); n != 0 {
				t.Errorf("fault-free run recorded %d transport errors, want 0", n)
			}
			if n := counterSum(cleanSnap, "iw_client_rpc_retries_total"); n != 0 {
				t.Errorf("fault-free run recorded %d retries, want 0", n)
			}

			if !bytes.Equal(got, want) {
				t.Errorf("server bytes diverge from fault-free run:\n faulted %x\n clean   %x", got, want)
			}
		})
	}
}

// TestChaosSeededConvergence runs a multi-client workload through a
// proxy loaded with a seeded ChaosRules schedule (resets at fixed
// byte offsets plus per-chunk latency) and checks that the segment
// converges to the fault-free result: every worker's final value is
// present. The schedule derives purely from the seed, so the faults
// injected are identical across runs.
func TestChaosSeededConvergence(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	const workers = 3

	_, addr := startChaosServer(t)
	sched := faultnet.NewSchedule()
	for _, r := range faultnet.ChaosRules(0xC0FFEE, 24, 10, 2000, 200*time.Microsecond) {
		sched.AddRule(r)
	}
	p := startChaosProxy(t, addr, sched)
	segName := p.Addr() + "/conv"

	setup := newChaosClient(t, fastRetry("setup"))
	h, err := setup.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := appRetry(func() error {
		if err := setup.WLock(h); err != nil {
			return err
		}
		if _, ok := h.Mem().BlockByName("slots"); !ok {
			if _, err := setup.Alloc(h, types.Int32(), workers, "slots"); err != nil {
				_ = setup.WUnlock(h)
				return err
			}
		}
		return setup.WUnlock(h)
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs <- chaosWorker(segName, w, iters)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// A fresh reader through the same proxy sees every worker's last
	// write — exactly what a fault-free run produces.
	reader := newChaosClient(t, fastRetry("reader"))
	hr, err := reader.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := appRetry(func() error { return reader.RLock(hr) }); err != nil {
		t.Fatal(err)
	}
	blk, ok := hr.Mem().BlockByName("slots")
	if !ok {
		t.Fatal("slots block missing")
	}
	for w := 0; w < workers; w++ {
		v, err := reader.Heap().ReadI32(blk.Addr + mem.Addr(4*w))
		if err != nil {
			t.Fatal(err)
		}
		if v != int32(iters) {
			t.Errorf("slot %d = %d, want %d", w, v, iters)
		}
	}
	if err := reader.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
}

func chaosWorker(segName string, w, iters int) error {
	c, err := NewClient(fastRetry(fmt.Sprintf("w%d", w)))
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	var h *Segment
	if err := appRetry(func() error {
		h, err = c.Open(segName)
		return err
	}); err != nil {
		return err
	}
	for i := 1; i <= iters; i++ {
		v := int32(i)
		if err := appRetry(func() error {
			if err := c.WLock(h); err != nil {
				return err
			}
			blk, ok := h.Mem().BlockByName("slots")
			if !ok {
				_ = c.WUnlock(h)
				return fmt.Errorf("worker %d: slots missing", w)
			}
			if err := c.Heap().WriteI32(blk.Addr+mem.Addr(4*w), v); err != nil {
				_ = c.WUnlock(h)
				return err
			}
			return c.WUnlock(h)
		}); err != nil {
			return fmt.Errorf("worker %d iteration %d: %w", w, i, err)
		}
	}
	return nil
}

// TestChaosPartitionDegradedRead pins down the coherence × partition
// interaction: with the client→server direction blackholed, a reader
// under relaxed (Delta) coherence keeps serving its valid cached
// copy — counted in StaleReads — while a Full-coherence reader gets
// an error, because strict freshness cannot be degraded. After the
// partition heals both read normally again.
func TestChaosPartitionDegradedRead(t *testing.T) {
	_, addr := startChaosServer(t)
	sched := faultnet.NewSchedule()
	p := startChaosProxy(t, addr, sched)
	segName := p.Addr() + "/deg"

	w := newChaosClient(t, fastRetry("writer"))
	h, err := w.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(h); err != nil {
		t.Fatal(err)
	}
	blk, err := w.Alloc(h, types.Int32(), 1, "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(blk.Addr, 42); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(h); err != nil {
		t.Fatal(err)
	}

	// Two readers, one relaxed, one strict. A blackholed request
	// hangs rather than failing fast, so reads during the partition
	// depend on RPCTimeout to detect the outage.
	readerOpts := func(name string, reg *obs.Registry, trace obs.TraceFunc) Options {
		o := fastRetry(name)
		o.RPCTimeout = 150 * time.Millisecond
		o.MaxRetries = 1
		o.Metrics = reg
		o.Trace = trace
		return o
	}
	readVal := func(c *Client, h *Segment) (int32, error) {
		if err := c.RLock(h); err != nil {
			return 0, err
		}
		defer func() { _ = c.RUnlock(h) }()
		b, ok := h.Mem().BlockByName("v")
		if !ok {
			return 0, fmt.Errorf("block v missing")
		}
		return c.Heap().ReadI32(b.Addr)
	}

	relaxedReg, strictReg := obs.NewRegistry(), obs.NewRegistry()
	var relaxedEvents eventLog
	relaxed := newChaosClient(t, readerOpts("relaxed", relaxedReg, relaxedEvents.record))
	hr, err := relaxed.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := relaxed.SetPolicy(hr, coherence.Delta(4)); err != nil {
		t.Fatal(err)
	}
	strict := newChaosClient(t, readerOpts("strict", strictReg, nil))
	hf, err := strict.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	// Both fetch version 1 while the link is healthy.
	for _, r := range []struct {
		c *Client
		h *Segment
	}{{relaxed, hr}, {strict, hf}} {
		if v, err := readVal(r.c, r.h); err != nil || v != 42 {
			t.Fatalf("pre-partition read = %d, %v", v, err)
		}
	}

	sched.Partition(faultnet.Up)

	v, err := readVal(relaxed, hr)
	if err != nil {
		t.Fatalf("relaxed reader failed during partition: %v", err)
	}
	if v != 42 {
		t.Errorf("degraded read = %d, want 42", v)
	}
	if n := relaxed.StaleReads(); n != 1 {
		t.Errorf("relaxed StaleReads = %d, want 1", n)
	}
	// The degraded read is observable from the outside: the metric
	// counter advanced and a structured read.degraded event names the
	// affected segment.
	if n := counterSum(relaxedReg.Snapshot(), "iw_client_degraded_reads_total"); n != 1 {
		t.Errorf("relaxed degraded-read counter = %d, want 1", n)
	}
	if ev, ok := relaxedEvents.find("read.degraded"); !ok {
		t.Error("no read.degraded trace event recorded")
	} else {
		if ev.Seg != segName {
			t.Errorf("read.degraded event names segment %q, want %q", ev.Seg, segName)
		}
		if ev.Err == "" {
			t.Error("read.degraded event carries no cause")
		}
	}
	if _, err := readVal(strict, hf); err == nil {
		t.Error("strict reader succeeded during partition, want error")
	}
	if n := strict.StaleReads(); n != 0 {
		t.Errorf("strict StaleReads = %d, want 0", n)
	}
	if n := counterSum(strictReg.Snapshot(), "iw_client_degraded_reads_total"); n != 0 {
		t.Errorf("strict degraded-read counter = %d, want 0", n)
	}

	sched.Heal()

	// The writer publishes version 2; the strict reader must see it.
	if err := w.WLock(h); err != nil {
		t.Fatal(err)
	}
	if err := w.Heap().WriteI32(blk.Addr, 43); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(h); err != nil {
		t.Fatal(err)
	}
	if v, err := readVal(strict, hf); err != nil || v != 43 {
		t.Errorf("strict read after heal = %d, %v; want 43", v, err)
	}
	// The relaxed reader works again too, within its staleness bound,
	// and no new degraded reads are counted.
	if v, err := readVal(relaxed, hr); err != nil || (v != 42 && v != 43) {
		t.Errorf("relaxed read after heal = %d, %v", v, err)
	}
	if n := relaxed.StaleReads(); n != 1 {
		t.Errorf("relaxed StaleReads after heal = %d, want still 1", n)
	}
	if n := counterSum(relaxedReg.Snapshot(), "iw_client_degraded_reads_total"); n != 1 {
		t.Errorf("relaxed degraded-read counter after heal = %d, want still 1", n)
	}
}

// TestChaosServerRestartMidWorkload combines the proxy with a server
// restart: the backend dies and comes back from its checkpoint on
// the same address mid-workload, and the client's sections ride
// backoff-retry through the outage. The final version count proves
// every section applied exactly once across the restart.
func TestChaosServerRestartMidWorkload(t *testing.T) {
	dir := t.TempDir()
	srv1, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = srv1.Serve(ln) }()

	sched := faultnet.NewSchedule()
	p := startChaosProxy(t, addr, sched)
	segName := p.Addr() + "/restart"

	c := newChaosClient(t, fastRetry("surv"))
	h, err := c.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	var blk *mem.Block
	section := func(v int32) error {
		if err := c.WLock(h); err != nil {
			return err
		}
		if blk == nil {
			if blk, err = c.Alloc(h, types.Int32(), 1, "v"); err != nil {
				_ = c.WUnlock(h)
				return err
			}
		}
		if err := c.Heap().WriteI32(blk.Addr, v); err != nil {
			_ = c.WUnlock(h)
			return err
		}
		return c.WUnlock(h)
	}
	for i := 1; i <= 3; i++ {
		if err := appRetry(func() error { return section(int32(i)) }); err != nil {
			t.Fatalf("section %d: %v", i, err)
		}
	}

	// Close checkpoints the final state; restart on the same address
	// so the proxy's next backend dial lands on the new instance.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	for i := 4; i <= 6; i++ {
		if err := appRetry(func() error { return section(int32(i)) }); err != nil {
			t.Fatalf("section %d after restart: %v", i, err)
		}
	}

	if err := c.RLock(h); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Heap().ReadI32(blk.Addr); v != 6 {
		t.Errorf("final value = %d, want 6", v)
	}
	if err := c.RUnlock(h); err != nil {
		t.Fatal(err)
	}
	seg := srv2.SegmentSnapshot(segName)
	if seg == nil {
		t.Fatal("segment missing after restart")
	}
	// Six sections on a fresh segment: exactly versions 1 through 6.
	if seg.Version != 6 {
		t.Errorf("server version = %d, want 6 (each section applied once)", seg.Version)
	}
}
