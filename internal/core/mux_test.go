package core

// Client-side tests of the session-mux transport against a scripted
// in-test server, pinning the properties DESIGN.md §10 promises the
// client: per-call timeouts fail only their call (late replies are
// discarded harmlessly), CodeNoSession maps to ErrSessionLost and
// latches, and an unsolicited eviction notice surfaces through
// OnEvict and poisons the session with ErrOverloaded.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"interweave/internal/protocol"
)

// muxFakeServer accepts one connection and answers frames with the
// handler's reply (nil = swallow the request). Pushes can be injected
// with push().
type muxFakeServer struct {
	t  *testing.T
	ln net.Listener

	mu   sync.Mutex
	conn net.Conn
}

func startMuxFake(t *testing.T, handler func(sid uint32, m protocol.Message) protocol.Message) *muxFakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &muxFakeServer{t: t, ln: ln}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conn = conn
		fs.mu.Unlock()
		for {
			id, m, _, sid, err := protocol.ReadFrameMux(conn)
			if err != nil {
				return
			}
			if reply := handler(sid, m); reply != nil {
				fs.send(sid, id, reply)
			}
		}
	}()
	return fs
}

func (fs *muxFakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *muxFakeServer) send(sid, id uint32, m protocol.Message) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.conn != nil {
		_ = protocol.WriteFrameMux(fs.conn, id, m, protocol.TraceContext{}, sid)
	}
}

// push sends a server-initiated frame (request id 0) to a session.
func (fs *muxFakeServer) push(sid uint32, m protocol.Message) {
	// The conn may not be registered yet right after dial.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fs.mu.Lock()
		ready := fs.conn != nil
		fs.mu.Unlock()
		if ready || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fs.send(sid, 0, m)
}

func TestMuxCallTimeoutFailsOnlyThatCall(t *testing.T) {
	var mu sync.Mutex
	delayed := make(map[uint32]bool) // sid -> delay this session's calls
	fs := startMuxFake(t, func(sid uint32, m protocol.Message) protocol.Message {
		if _, ok := m.(*protocol.Hello); ok {
			return &protocol.Ack{}
		}
		mu.Lock()
		d := delayed[sid]
		mu.Unlock()
		if d {
			return nil // swallowed: the call must time out
		}
		return &protocol.VersionReply{Version: 7}
	})

	mc, err := DialMux(fs.addr(), MuxOptions{RPCTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	slow, err := mc.NewSession("slow", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := mc.NewSession("fast", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	delayed[slow.SID()] = true
	mu.Unlock()

	if _, err := slow.Call(&protocol.ReadUnlock{Seg: "s"}); err == nil {
		t.Fatal("swallowed call did not time out")
	}
	// The timeout poisoned neither the connection nor the session.
	if _, err := fast.Call(&protocol.ReadUnlock{Seg: "s"}); err != nil {
		t.Fatalf("fast session after slow timeout: %v", err)
	}
	if slow.Lost() {
		t.Fatal("timeout marked the session lost")
	}
	mu.Lock()
	delayed[slow.SID()] = false
	mu.Unlock()
	if _, err := slow.Call(&protocol.ReadUnlock{Seg: "s"}); err != nil {
		t.Fatalf("slow session after recovery: %v", err)
	}
}

func TestMuxNoSessionLatchesLost(t *testing.T) {
	fs := startMuxFake(t, func(sid uint32, m protocol.Message) protocol.Message {
		if _, ok := m.(*protocol.Hello); ok {
			return &protocol.Ack{}
		}
		return &protocol.ErrorReply{Code: protocol.CodeNoSession, Text: "evicted"}
	})
	mc, err := DialMux(fs.addr(), MuxOptions{RPCTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	s, err := mc.NewSession("s", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(&protocol.ReadUnlock{Seg: "x"}); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("error = %v, want ErrSessionLost", err)
	}
	if !s.Lost() {
		t.Fatal("session not marked lost")
	}
	// Lost latches: the next call fails locally with the same error.
	if _, err := s.Call(&protocol.ReadUnlock{Seg: "x"}); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("second error = %v, want ErrSessionLost", err)
	}
}

func TestMuxEvictionNoticeFiresOnEvict(t *testing.T) {
	fs := startMuxFake(t, func(sid uint32, m protocol.Message) protocol.Message {
		if _, ok := m.(*protocol.Hello); ok {
			return &protocol.Ack{}
		}
		return &protocol.Ack{}
	})
	evicted := make(chan string, 1)
	mc, err := DialMux(fs.addr(), MuxOptions{
		RPCTimeout: time.Second,
		OnEvict:    func(s *MuxSession, reason string) { evicted <- reason },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	s, err := mc.NewSession("victim", "x86-32le")
	if err != nil {
		t.Fatal(err)
	}

	fs.push(s.SID(), &protocol.ErrorReply{Code: protocol.CodeOverloaded, Text: "session evicted: slow"})
	select {
	case reason := <-evicted:
		if reason != "session evicted: slow" {
			t.Fatalf("evict reason = %q", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnEvict never fired")
	}
	if !s.Lost() {
		t.Fatal("evicted session not marked lost")
	}
	if _, err := s.Call(&protocol.ReadUnlock{Seg: "x"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call on evicted session = %v, want ErrOverloaded", err)
	}
}
