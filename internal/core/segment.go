package core

import (
	"errors"
	"fmt"
	"time"

	"interweave/internal/coherence"
	"interweave/internal/diff"
	"interweave/internal/mem"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/swizzle"
	"interweave/internal/types"
	"interweave/internal/wire"
)

// Errors returned by lock and allocation operations.
var (
	// ErrNotLocked reports an operation that requires a lock the
	// caller does not hold.
	ErrNotLocked = errors.New("core: segment is not locked in the required mode")
	// ErrNoSuchType reports a diff referencing an unregistered type
	// descriptor.
	ErrNoSuchType = errors.New("core: unregistered type descriptor")
	// ErrWriteConflict reports a write release abandoned because
	// another client committed while this client was disconnected
	// mid-release. The local modifications are dropped and the cached
	// copy is refetched in full on the next lock acquisition.
	ErrWriteConflict = errors.New("core: write release lost a conflict during reconnect")
	// ErrNotReplicated reports a write release the primary applied but
	// could not replicate to every placed replica; under the cluster's
	// replicate-before-acknowledge contract the release is reported
	// failed rather than acknowledged with durability it does not
	// have. The write is visible at the primary and re-syncs to the
	// replicas with the next successful release.
	ErrNotReplicated = errors.New("core: write release not replicated to all replicas")
)

// hotReleasesToNoDiff is how many consecutive mostly-modified write
// critical sections trigger no-diff mode.
const hotReleasesToNoDiff = 2

// segment is the client-side state of one cached segment.
type segment struct {
	name string
	m    *mem.SegMem
	conn *serverConn

	version         uint32
	policy          coherence.Policy
	state           coherence.State
	adaptive        coherence.Adaptive
	notifiedVersion uint32

	// Local reader-writer gate among this process's goroutines.
	readers      int
	writer       bool
	writeWaiters int

	// Outgoing bookkeeping.
	// wseq numbers this client's write releases of the segment;
	// together with the client's writerID it keys the server's
	// at-most-once dedup of retried releases.
	wseq          uint32
	freed         []uint32
	nextLocalDesc uint32
	descForType   map[*types.Type]uint32
	descBytes     map[uint32][]byte
	// Incoming descriptor registry, keyed by server-global serial.
	layoutByDesc map[uint32]*types.Layout

	// No-diff mode state (Section 3.3).
	noDiff      bool
	noDiffCount int
	hotReleases int

	// LastCollect reports the most recent diff collection, for
	// statistics and the benchmark harness.
	lastCollect diff.Stats
}

// Segment is an opaque handle to an open segment, the IW_handle_t of
// the paper's API.
type Segment struct {
	c *Client
	s *segment
}

// Name returns the segment's URL.
func (h *Segment) Name() string { return h.s.name }

// Version returns the cached segment version.
func (h *Segment) Version() uint32 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.s.version
}

// Mem exposes the segment's local memory image (block lookups by name
// or serial). Use it only under a lock.
func (h *Segment) Mem() *mem.SegMem { return h.s.m }

// LastCollectStats returns statistics from the segment's most recent
// diff collection.
func (h *Segment) LastCollectStats() diff.Stats {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.s.lastCollect
}

// NoDiffMode reports whether the segment currently transmits whole
// blocks instead of diffing.
func (h *Segment) NoDiffMode() bool {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.s.noDiff
}

// Evict drops the segment's cached copy: its subsegments are
// unmapped, any subscription is cancelled, and the handle becomes
// unusable. A later Open re-fetches from the server. Eviction
// requires that no locks are held and — because other cached
// segments may hold swizzled pointers into this one — is refused
// while any other cached segment exists (the paper's library never
// relocates or unmaps live data for the same reason).
func (c *Client) Evict(h *Segment) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := h.s
	if s.writer || s.readers > 0 {
		return fmt.Errorf("core: evicting %q while locked", s.name)
	}
	for name := range c.segs {
		if name != s.name {
			return fmt.Errorf("core: cannot evict %q: segment %q may hold pointers into it", s.name, name)
		}
	}
	if s.state.Subscribed {
		_, _ = s.conn.call(&protocol.Unsubscribe{Seg: s.name})
	}
	if err := c.heap.DropSegment(s.name); err != nil {
		return err
	}
	delete(c.segs, s.name)
	return nil
}

// Open opens the named segment — "host:port/path" — creating it at
// its server if it does not exist (IW_open_segment). The local copy
// is reserved (blocks get addresses) but no data travels until the
// first lock acquisition.
func (c *Client) Open(name string) (*Segment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.openShell(name, true)
	if err != nil {
		return nil, err
	}
	return &Segment{c: c, s: s}, nil
}

// openShell fetches or creates the segment's local shell. Caller
// holds c.mu.
func (c *Client) openShell(name string, create bool) (*segment, error) {
	if s, ok := c.segs[name]; ok {
		return s, nil
	}
	sp := c.tracer.Start("client.Open")
	defer sp.End()
	reply, err := c.callRetry(name, &protocol.OpenSegment{Name: name, Create: create}, sp)
	if err != nil {
		return nil, fmt.Errorf("core: opening %q: %w", name, err)
	}
	sc, err := c.connFor(name)
	if err != nil {
		return nil, err
	}
	or, ok := reply.(*protocol.OpenReply)
	if !ok {
		return nil, fmt.Errorf("core: unexpected reply %T to open", reply)
	}
	// The open may have raced with another goroutine's shell fetch.
	if s, ok := c.segs[name]; ok {
		return s, nil
	}
	sm, err := c.heap.NewSegment(name)
	if err != nil {
		return nil, err
	}
	s := &segment{
		name:          name,
		m:             sm,
		conn:          sc,
		policy:        c.opts.DefaultPolicy,
		nextLocalDesc: 1,
		descForType:   make(map[*types.Type]uint32),
		descBytes:     make(map[uint32][]byte),
		layoutByDesc:  make(map[uint32]*types.Layout),
	}
	c.segs[name] = s
	if or.Dir != nil {
		if err := c.applyIncoming(s, or.Dir, false); err != nil {
			return nil, fmt.Errorf("core: applying directory of %q: %w", name, err)
		}
	}
	return s, nil
}

// refreshDir re-fetches the block directory, materializing blocks
// created since the shell was opened. Caller holds c.mu.
func (c *Client) refreshDir(s *segment) error {
	reply, err := c.callSeg(s, &protocol.OpenSegment{Name: s.name, Create: false}, nil)
	if err != nil {
		return err
	}
	or, ok := reply.(*protocol.OpenReply)
	if !ok {
		return fmt.Errorf("core: unexpected reply %T to open", reply)
	}
	if or.Dir == nil {
		return nil
	}
	return c.applyIncoming(s, or.Dir, false)
}

// registerIncomingDescs decodes and caches descriptors carried by a
// diff. Caller holds c.mu.
func (c *Client) registerIncomingDescs(s *segment, d *wire.SegmentDiff) error {
	for _, dd := range d.Descs {
		if _, ok := s.layoutByDesc[dd.Serial]; ok {
			continue
		}
		t, err := types.Unmarshal(dd.Bytes)
		if err != nil {
			return fmt.Errorf("core: descriptor %d: %w", dd.Serial, err)
		}
		l, err := c.layouts.Of(t, c.prof)
		if err != nil {
			return fmt.Errorf("core: layout for descriptor %d: %w", dd.Serial, err)
		}
		s.layoutByDesc[dd.Serial] = l
	}
	return nil
}

// applyIncoming applies a server diff (or directory) to the local
// copy. When advance is true the cached version advances to
// d.Version. Caller holds c.mu.
func (c *Client) applyIncoming(s *segment, d *wire.SegmentDiff, advance bool) error {
	if err := c.registerIncomingDescs(s, d); err != nil {
		return err
	}
	// The bulk unswizzler resolves the vast majority of MIPs from
	// its block cache; the slow path handles MIPs into segments (or
	// blocks) we have not seen yet, refreshing directories as
	// needed.
	uw := swizzle.NewUnswizzler(func(name string) (*mem.SegMem, error) {
		if seg, ok := c.segs[name]; ok {
			return seg.m, nil
		}
		seg, err := c.openShell(name, false)
		if err != nil {
			return nil, err
		}
		return seg.m, nil
	})
	var applyStart time.Time
	if c.ins != nil {
		applyStart = time.Now()
	}
	res, err := diff.ApplySegment(s.m, d, diff.ApplyOptions{
		Resolve: func(mip string) (mem.Addr, error) {
			if a, err := uw.Addr(mip); err == nil {
				return a, nil
			}
			return c.resolveMIP(mip)
		},
		LayoutFor: func(serial uint32) (*types.Layout, error) {
			l, ok := s.layoutByDesc[serial]
			if !ok {
				return nil, fmt.Errorf("%w: serial %d", ErrNoSuchType, serial)
			}
			return l, nil
		},
	})
	if err != nil {
		return err
	}
	if c.ins != nil {
		c.ins.diffApply.ObserveSince(applyStart)
		c.ins.applyUnits.Add(uint64(res.UnitsApplied))
	}
	if advance {
		s.version = d.Version
		s.state.Version = d.Version
		s.state.FetchedAt = time.Now()
		s.state.Invalidated = false
	}
	return nil
}

// applyTraced is applyIncoming (advancing the version) wrapped in a
// "client.diff_apply" child span when tracing is on. Caller holds
// c.mu.
func (c *Client) applyTraced(s *segment, d *wire.SegmentDiff, sp *obs.Span) error {
	asp := sp.Child("client.diff_apply")
	err := c.applyIncoming(s, d, true)
	if asp != nil {
		asp.Attr("seg", s.name)
		asp.AttrInt("version", int64(d.Version))
		asp.Error(err)
		asp.End()
	}
	return err
}

// resolveMIP turns a MIP into a local address, reserving the target
// segment if it is not yet cached. Caller holds c.mu.
func (c *Client) resolveMIP(mipStr string) (mem.Addr, error) {
	m, err := swizzle.Parse(mipStr)
	if err != nil {
		return 0, err
	}
	if m.IsNil() {
		return 0, nil
	}
	s, ok := c.segs[m.Segment]
	if !ok {
		s, err = c.openShell(m.Segment, false)
		if err != nil {
			return 0, fmt.Errorf("core: resolving %q: %w", mipStr, err)
		}
	}
	addr, err := swizzle.AddrOfMIP(s.m, m)
	if err == nil {
		return addr, nil
	}
	// The MIP may reference a block newer than our shell; refresh
	// the directory once and retry.
	if rerr := c.refreshDir(s); rerr != nil {
		return 0, fmt.Errorf("core: resolving %q: %w", mipStr, rerr)
	}
	return swizzle.AddrOfMIP(s.m, m)
}

// MIPToPtr converts a machine-independent pointer into a local
// address, reserving space for the target segment if needed
// (IW_mip_to_ptr).
func (c *Client) MIPToPtr(mip string) (mem.Addr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resolveMIP(mip)
}

// PtrToMIP converts a local pointer into its machine-independent form
// (IW_ptr_to_mip).
func (c *Client) PtrToMIP(addr mem.Addr) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := swizzle.PtrToMIP(c.heap, addr)
	if err != nil {
		return "", err
	}
	return m.String(), nil
}

// SetPolicy changes the segment's coherence policy; the bound may be
// adjusted dynamically, as the paper specifies.
func (c *Client) SetPolicy(h *Segment, p coherence.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := h.s
	s.policy = p
	if s.state.Subscribed {
		if _, err := c.callSeg(s, &protocol.Subscribe{Seg: s.name, HaveVersion: s.version, Policy: p}, nil); err != nil {
			s.state.Subscribed = false
			return err
		}
	}
	return nil
}

// RLock acquires a read lock (IW_rl_acquire): it blocks out local
// writers and brings the cached copy up to date if the coherence
// policy requires.
func (c *Client) RLock(h *Segment) error {
	s := h.s
	var start time.Time
	if c.ins != nil {
		start = time.Now()
	}
	sp := c.tracer.Start("client.ReadLock")
	sp.Attr("seg", s.name)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	for s.writer || s.writeWaiters > 0 {
		c.cond.Wait()
	}
	if err := c.ensureFresh(s, sp); err != nil {
		sp.Error(err)
		return err
	}
	s.readers++
	if c.ins != nil {
		c.ins.lockWaitRead.ObserveSince(start)
	}
	return nil
}

// RUnlock releases a read lock (IW_rl_release).
func (c *Client) RUnlock(h *Segment) error {
	s := h.s
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.readers == 0 {
		return fmt.Errorf("%w: read", ErrNotLocked)
	}
	s.readers--
	if s.readers == 0 {
		c.cond.Broadcast()
	}
	return nil
}

// ensureFresh implements the read-lock freshness protocol: grant
// locally when the policy allows, otherwise poll the server and apply
// whatever diff comes back. The span, when non-nil, parents the RPC
// attempt and diff-apply child spans. Caller holds c.mu.
func (c *Client) ensureFresh(s *segment, sp *obs.Span) error {
	now := time.Now()
	if s.state.Subscribed && s.conn.isClosed() {
		// The server holding our subscription is gone; notifications
		// can no longer arrive, so local freshness cannot be trusted.
		s.state.Subscribed = false
	}
	if s.policy.LocallyFresh(s.state, now) {
		return nil
	}
	wasInvalidated := s.state.Invalidated
	policy := s.policy
	if s.version == 0 {
		// "When a process first locks a shared segment, the library
		// obtains a copy from the segment's server" — relaxed bounds
		// apply only to subsequent acquisitions.
		policy = coherence.Full()
	}
	reply, err := c.callSeg(s, &protocol.ReadLock{Seg: s.name, HaveVersion: s.version, Policy: policy}, sp)
	if err != nil {
		if isTransport(err) && s.version > 0 && s.policy.Model != coherence.ModelFull {
			// Graceful degradation: relaxed coherence already tolerates
			// bounded staleness, so with the server unreachable a
			// Delta/Temporal/Diff reader keeps serving its valid cached
			// version instead of failing (paper Section 2's rationale
			// for recently-coherent data).
			s.state.FetchedAt = now
			s.state.Invalidated = false
			c.staleReads.Add(1)
			if c.ins != nil {
				c.ins.degradedReads.Inc()
			}
			c.trace(obs.Event{Name: "read.degraded", Seg: s.name, Err: err.Error()})
			return nil
		}
		return fmt.Errorf("core: read lock on %q: %w", s.name, err)
	}
	lr, ok := reply.(*protocol.LockReply)
	if !ok {
		return fmt.Errorf("core: unexpected reply %T to read lock", reply)
	}
	updated := false
	if !lr.Fresh && lr.Diff != nil {
		if err := c.applyTraced(s, lr.Diff, sp); err != nil {
			return err
		}
		updated = true
	}
	if c.ins != nil {
		if updated {
			c.ins.versionUpdate.Inc()
		} else {
			c.ins.versionFresh.Inc()
		}
	}
	if !updated {
		// The server says we are recent enough.
		s.state.FetchedAt = now
		s.state.Invalidated = false
		if s.state.Version == 0 {
			s.state.Version = s.version
		}
	}
	c.adapt(s, updated, wasInvalidated)
	return nil
}

// adapt runs the adaptive polling/notification protocol after a
// server round trip. Temporal coherence relies purely on the local
// clock and never subscribes. Caller holds c.mu.
func (c *Client) adapt(s *segment, updated, wasInvalidated bool) {
	if s.policy.Model == coherence.ModelTemporal {
		return
	}
	if s.state.Subscribed {
		if s.adaptive.RecordNotified(wasInvalidated) {
			// Too many invalidations: notifications are pure
			// overhead, go back to polling.
			if _, err := s.conn.call(&protocol.Unsubscribe{Seg: s.name}); err == nil {
				s.state.Subscribed = false
			}
		}
		return
	}
	if s.adaptive.RecordPoll(updated) {
		reply, err := s.conn.call(&protocol.Subscribe{Seg: s.name, HaveVersion: s.version, Policy: s.policy})
		if _, redirected := reply.(*protocol.Redirect); err == nil && !redirected {
			s.state.Subscribed = true
			s.state.Invalidated = false
		}
	}
}

// WLock acquires the segment's exclusive write lock (IW_wl_acquire):
// it waits out local readers and writers, obtains the server-side
// write lock, brings the copy up to date, and write-protects the
// local pages so modifications are tracked.
func (c *Client) WLock(h *Segment) error {
	s := h.s
	var start time.Time
	if c.ins != nil {
		start = time.Now()
	}
	sp := c.tracer.Start("client.WriteLock")
	sp.Attr("seg", s.name)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	s.writeWaiters++
	for s.writer || s.readers > 0 {
		c.cond.Wait()
	}
	s.writeWaiters--
	s.writer = true
	reply, err := c.callSeg(s, &protocol.WriteLock{Seg: s.name, HaveVersion: s.version, Policy: s.policy}, sp)
	if err == nil {
		if lr, ok := reply.(*protocol.LockReply); ok {
			if !lr.Fresh && lr.Diff != nil {
				err = c.applyTraced(s, lr.Diff, sp)
			}
		} else {
			err = fmt.Errorf("core: unexpected reply %T to write lock", reply)
		}
	}
	if err != nil {
		s.writer = false
		c.cond.Broadcast()
		sp.Error(err)
		return fmt.Errorf("core: write lock on %q: %w", s.name, err)
	}
	if !s.noDiff {
		s.m.WriteProtect()
	}
	if c.ins != nil {
		c.ins.lockWaitWrite.ObserveSince(start)
	}
	return nil
}

// WUnlock releases the write lock (IW_wl_release): local changes are
// gathered into a machine-independent diff — twin comparison plus
// translation, or whole blocks in no-diff mode — and shipped to the
// server, which assigns the new segment version.
func (c *Client) WUnlock(h *Segment) error {
	s := h.s
	sp := c.tracer.Start("client.WriteUnlock")
	sp.Attr("seg", s.name)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !s.writer {
		err := fmt.Errorf("%w: write", ErrNotLocked)
		sp.Error(err)
		return err
	}
	var st diff.Stats
	var collectStart time.Time
	if c.ins != nil {
		collectStart = time.Now()
	}
	csp := sp.Child("client.diff_collect")
	d, err := diff.CollectSegment(s.m, diff.CollectOptions{
		NoDiff:  s.noDiff,
		Freed:   s.freed,
		Stats:   &st,
		Swizzle: c.swizzler(),
	})
	if csp != nil {
		csp.AttrInt("bytes", int64(st.Bytes))
		csp.AttrInt("units", int64(st.Units))
		csp.Error(err)
		csp.End()
	}
	if err != nil {
		// Leave the lock held: the caller may retry after fixing the
		// problem (e.g. an unswizzlable private pointer).
		sp.Error(err)
		return fmt.Errorf("core: collecting diff of %q: %w", s.name, err)
	}
	s.lastCollect = st
	if c.ins != nil {
		c.ins.diffCollect.ObserveSince(collectStart)
		c.ins.diffSize.Observe(float64(st.Bytes))
		c.ins.diffBytes.Add(uint64(st.Bytes))
		c.ins.diffUnitsSent.Add(uint64(st.Units))
		total := 0
		s.m.Blocks(func(b *mem.Block) bool {
			total += b.PrimCount()
			return true
		})
		c.ins.diffUnitsFull.Add(uint64(total))
		if s.noDiff {
			c.ins.noDiffReleases.Inc()
		}
	}
	attachDescDefs(s, d)
	var payload *wire.SegmentDiff
	if !d.Empty() {
		payload = d
	}
	s.wseq++
	msg := &protocol.WriteUnlock{Seg: s.name, Diff: payload, WriterID: c.writerID, Seq: s.wseq}
	reply, err := c.callSeg(s, msg, sp)
	if err != nil && isTransport(err) {
		// The connection died with the release in flight: the server
		// may or may not have applied it. Resolve the ambiguity.
		reply, err = c.recoverWUnlock(s, msg, sp)
	} else if err != nil && errCode(err) == protocol.CodeNotOwner {
		// The release raced an ownership change and the old owner
		// fenced it without committing cluster-wide. The Resume probe
		// inside the recovery loop is redirected to the new owner
		// (the fenced server adopted the newer view before replying),
		// which holds every acknowledged version — so the identical
		// release is re-driven there.
		reply, err = c.recoverWUnlock(s, msg, sp)
	}
	if err != nil {
		if errCode(err) == protocol.CodeNotReplicated {
			err = fmt.Errorf("%w: %w", ErrNotReplicated, err)
		}
		s.releaseWrite(c)
		sp.Error(err)
		return fmt.Errorf("core: write unlock on %q: %w", s.name, err)
	}
	vr, ok := reply.(*protocol.VersionReply)
	if !ok {
		s.releaseWrite(c)
		err := fmt.Errorf("core: unexpected reply %T to write unlock", reply)
		sp.Error(err)
		return err
	}
	s.version = vr.Version
	s.state.Version = vr.Version
	s.state.FetchedAt = time.Now()
	s.state.Invalidated = false
	s.freed = nil
	s.m.DropTwins()
	s.m.Unprotect()
	s.updateNoDiff(c, st.Units)
	s.releaseWrite(c)
	return nil
}

func (s *segment) releaseWrite(c *Client) {
	s.writer = false
	c.cond.Broadcast()
}

// recoverWUnlock resolves an ambiguous write release: the connection
// died after the request may have reached the server. A Resume probe
// asks whether (WriterID, Seq) was applied; if it was, the recorded
// version is adopted and nothing is resent. If it was not and no
// other writer committed meanwhile, the write lock is re-acquired on
// the fresh session and the identical release resent — the server's
// dedup table makes the pair at-most-once even if the retry races a
// late-arriving original. If another writer did commit (the server
// released our lock with the dead session), the diff was computed
// against a version that no longer exists and the release is
// abandoned with ErrWriteConflict. The span, when non-nil, parents a
// "client.recover" child span covering the whole probe/resend loop.
// Caller holds c.mu and the local write lock.
func (c *Client) recoverWUnlock(s *segment, m *protocol.WriteUnlock, sp *obs.Span) (reply protocol.Message, err error) {
	c.trace(obs.Event{Name: "wunlock.recover", Seg: s.name, RPC: "WriteUnlock"})
	rsp := sp.Child("client.recover")
	rsp.Attr("seg", s.name)
	defer func() {
		rsp.Error(err)
		rsp.End()
	}()
	base := s.version
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 && !c.sleepRetry(attempt-1) {
			return nil, errors.New("core: client closed")
		}
		reply, err := c.callSeg(s, &protocol.Resume{Seg: s.name, WriterID: m.WriterID, Seq: m.Seq}, rsp)
		if err != nil {
			lastErr = err
			if isTransport(err) {
				continue
			}
			return nil, err
		}
		rr, ok := reply.(*protocol.ResumeReply)
		if !ok {
			return nil, fmt.Errorf("core: unexpected reply %T to resume", reply)
		}
		if rr.Applied {
			c.trace(obs.Event{Name: "wunlock.recover-applied", Seg: s.name, Attempt: attempt})
			rsp.Attr("outcome", "already-applied")
			return &protocol.VersionReply{Version: rr.AppliedVersion}, nil
		}
		if rr.CurrentVersion != base {
			return nil, c.conflict(s)
		}
		// Not applied and nobody else wrote: take the lock again on
		// the new session and resend the identical release.
		lreply, err := c.callSeg(s, &protocol.WriteLock{Seg: s.name, HaveVersion: base, Policy: s.policy}, rsp)
		if err != nil {
			lastErr = err
			if isTransport(err) {
				continue
			}
			return nil, err
		}
		lr, ok := lreply.(*protocol.LockReply)
		if !ok {
			return nil, fmt.Errorf("core: unexpected reply %T to write lock", lreply)
		}
		if !lr.Fresh {
			// The version moved between probe and grant. We now hold
			// the server lock — surrender it untouched before failing.
			_, _ = c.callSeg(s, &protocol.WriteUnlock{Seg: s.name}, rsp)
			return nil, c.conflict(s)
		}
		c.trace(obs.Event{Name: "wunlock.resent", Seg: s.name, Attempt: attempt})
		rsp.Attr("outcome", "resent")
		reply, err = c.callSeg(s, m, rsp)
		if err == nil || !isTransport(err) {
			return reply, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: release recovery gave up: %w", lastErr)
}

// conflict abandons uncommitted local modifications after a lost
// write race and resets the cache so the next lock refetches a full
// copy.
func (c *Client) conflict(s *segment) error {
	if c.ins != nil {
		c.ins.writeConflicts.Inc()
	}
	c.trace(obs.Event{Name: "wunlock.conflict", Seg: s.name})
	c.resetSegCache(s)
	return ErrWriteConflict
}

// resetSegCache invalidates the segment's cached copy: version 0
// forces the next lock acquisition through the first-lock path, which
// fetches the entire segment and overwrites abandoned local
// modifications. Blocks allocated locally but never committed remain
// mapped (other segments may hold pointers at them) but are unknown
// to the server.
func (c *Client) resetSegCache(s *segment) {
	s.version = 0
	s.state = coherence.State{}
	s.m.DropTwins()
	s.m.Unprotect()
	s.freed = nil
	s.noDiff = false
	s.hotReleases = 0
}

// updateNoDiff adjusts the no-diff mode after a release: a client
// that repeatedly modifies most of the data switches to whole-segment
// transmission, and periodically switches back to diffing to capture
// changes in application behaviour (Section 3.3).
func (s *segment) updateNoDiff(c *Client, unitsSent int) {
	if c.opts.NoDiffOn < 0 {
		return
	}
	total := 0
	s.m.Blocks(func(b *mem.Block) bool {
		total += b.PrimCount()
		return true
	})
	if total == 0 {
		return
	}
	if s.noDiff {
		s.noDiffCount++
		if s.noDiffCount%c.opts.NoDiffResample == 0 {
			s.noDiff = false // re-sample with diffing next section
			s.hotReleases = 0
		}
		return
	}
	if float64(unitsSent) >= c.opts.NoDiffOn*float64(total) {
		s.hotReleases++
		if s.hotReleases >= hotReleasesToNoDiff {
			s.noDiff = true
			s.noDiffCount = 0
		}
	} else {
		s.hotReleases = 0
	}
}

// attachDescDefs prepends definitions for every client-local type
// descriptor the diff's new blocks reference.
func attachDescDefs(s *segment, d *wire.SegmentDiff) {
	seen := make(map[uint32]bool)
	for _, nb := range d.News {
		if seen[nb.DescSerial] {
			continue
		}
		if b, ok := s.descBytes[nb.DescSerial]; ok {
			seen[nb.DescSerial] = true
			d.Descs = append(d.Descs, wire.DescDef{Serial: nb.DescSerial, Bytes: b})
		}
	}
}

// swizzler translates local pointers during diff collection. A fresh
// Swizzler per collection keeps its block cache inside one write
// critical section, where no frees can invalidate it.
func (c *Client) swizzler() diff.SwizzleFunc {
	return swizzle.NewSwizzler(c.heap).MIPString
}

// Alloc allocates a block of count elements of type t in the segment
// (IW_malloc). The caller must hold the write lock.
func (c *Client) Alloc(h *Segment, t *types.Type, count int, name string) (*mem.Block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := h.s
	if !s.writer {
		return nil, fmt.Errorf("%w: write (Alloc)", ErrNotLocked)
	}
	l, err := c.layouts.Of(t, c.prof)
	if err != nil {
		return nil, err
	}
	serial, ok := s.descForType[t]
	if !ok {
		b, err := types.Marshal(t)
		if err != nil {
			return nil, err
		}
		serial = s.nextLocalDesc
		s.nextLocalDesc++
		s.descForType[t] = serial
		s.descBytes[serial] = b
	}
	blk, err := s.m.Alloc(l, count, name)
	if err != nil {
		return nil, err
	}
	blk.DescSerial = serial
	return blk, nil
}

// Free releases a block (IW_free). The caller must hold the write
// lock.
func (c *Client) Free(h *Segment, b *mem.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := h.s
	if !s.writer {
		return fmt.Errorf("%w: write (Free)", ErrNotLocked)
	}
	wasPending := b.Pending
	serial := b.Serial
	if err := s.m.Free(b); err != nil {
		return err
	}
	if !wasPending {
		// The server knows this block; tell it on release. Blocks
		// created and freed within one critical section never leave
		// the client.
		s.freed = append(s.freed, serial)
	}
	return nil
}
