package core

import (
	"fmt"
	"sync"
	"testing"

	"interweave/internal/arch"
	"interweave/internal/mem"
	"interweave/internal/types"
)

// TestMultiClientStress runs several heterogeneous clients against
// one server, each performing mixed read/write critical sections on a
// shared array of counters, and checks the global invariant: the sum
// of all counters equals the number of increments performed.
func TestMultiClientStress(t *testing.T) {
	addr := startServer(t)
	segName := addr + "/stress"
	const (
		slots       = 64
		clients     = 4
		perClient   = 30
		readsPerSec = 2
	)
	profiles := []*arch.Profile{arch.AMD64(), arch.X86(), arch.Sparc(), arch.MIPS64()}

	// Client 0 sets up the segment.
	setup := newTestClient(t, profiles[0], "setup")
	hs, err := setup.Open(segName)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.WLock(hs); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Alloc(hs, types.Int32(), slots, "ctrs"); err != nil {
		t.Fatal(err)
	}
	if err := setup.WUnlock(hs); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs <- stressWorker(t, profiles[ci%len(profiles)], segName, ci, perClient, readsPerSec)
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Final invariant check.
	if err := setup.RLock(hs); err != nil {
		t.Fatal(err)
	}
	blk, _ := hs.Mem().BlockByName("ctrs")
	var sum int64
	for i := 0; i < slots; i++ {
		v, err := setup.Heap().ReadI32(blk.Addr + mem.Addr(4*i))
		if err != nil {
			t.Fatal(err)
		}
		sum += int64(v)
	}
	if err := setup.RUnlock(hs); err != nil {
		t.Fatal(err)
	}
	if want := int64(clients * perClient); sum != want {
		t.Errorf("counter sum = %d, want %d", sum, want)
	}
}

func stressWorker(t *testing.T, prof *arch.Profile, segName string, id, increments, readsPer int) error {
	c, err := NewClient(Options{Profile: prof, Name: fmt.Sprintf("w%d", id)})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	h, err := c.Open(segName)
	if err != nil {
		return err
	}
	for i := 0; i < increments; i++ {
		// Write section: increment one slot.
		if err := c.WLock(h); err != nil {
			return err
		}
		blk, ok := h.Mem().BlockByName("ctrs")
		if !ok {
			return fmt.Errorf("worker %d: counters missing", id)
		}
		slot := (id*7 + i*13) % blk.Count
		a := blk.Addr + mem.Addr(4*slot)
		v, err := c.Heap().ReadI32(a)
		if err != nil {
			return err
		}
		if err := c.Heap().WriteI32(a, v+1); err != nil {
			return err
		}
		if err := c.WUnlock(h); err != nil {
			return err
		}
		// Read sections: counters never decrease in sum below the
		// number of increments this worker has completed.
		for r := 0; r < readsPer; r++ {
			if err := c.RLock(h); err != nil {
				return err
			}
			blk, _ := h.Mem().BlockByName("ctrs")
			var sum int64
			for s := 0; s < blk.Count; s++ {
				v, err := c.Heap().ReadI32(blk.Addr + mem.Addr(4*s))
				if err != nil {
					return err
				}
				sum += int64(v)
			}
			if err := c.RUnlock(h); err != nil {
				return err
			}
			if sum < int64(i+1) {
				return fmt.Errorf("worker %d: sum %d below own progress %d", id, sum, i+1)
			}
		}
	}
	return nil
}

// TestLocalLockGate exercises the intra-process reader-writer gate:
// a writer waits for local readers, and readers wait for the writer.
func TestLocalLockGate(t *testing.T) {
	addr := startServer(t)
	c := newTestClient(t, arch.AMD64(), "c")
	h, err := c.Open(addr + "/gate")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(h, types.Int32(), 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}

	// Hold a read lock; a writer goroutine must block until release.
	if err := c.RLock(h); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := c.WLock(h); err != nil {
			t.Error(err)
		}
		close(acquired)
		_ = c.WUnlock(h)
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired while reader held the lock")
	default:
	}
	if err := c.RUnlock(h); err != nil {
		t.Fatal(err)
	}
	<-acquired
}
