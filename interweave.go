// Package interweave is a Go implementation of InterWeave, the
// distributed middleware system for sharing strongly typed,
// pointer-rich data structures across heterogeneous platforms
// described in:
//
//	C. Tang, D. Chen, S. Dwarkadas, and M. L. Scott. "Efficient
//	Distributed Shared State for Heterogeneous Machine
//	Architectures." ICDCS 2003.
//
// InterWeave lets processes map shared segments into their address
// space and access the data with ordinary reads and writes, while the
// library transparently keeps cached copies coherent: modifications
// are detected with page twins, converted into machine-independent
// wire-format diffs at write-lock release, and applied through type
// descriptors on machines with different byte orders, word sizes and
// alignment rules. Pointers are swizzled to and from
// machine-independent pointers (MIPs) of the form
// "host:port/segment#block#offset".
//
// The package mirrors the paper's C API:
//
//	c, _ := interweave.NewClient(interweave.Options{})
//	h, _ := c.Open("host:port/list")         // IW_open_segment
//	_ = c.WLock(h)                           // IW_wl_acquire
//	blk, _ := c.Alloc(h, nodeType, 1, "head") // IW_malloc
//	... ordinary reads/writes through c.Heap() or Ref ...
//	_ = c.WUnlock(h)                         // IW_wl_release
//	addr, _ := c.MIPToPtr("host:port/list#head") // IW_mip_to_ptr
//
// Because Go's garbage-collected pointers cannot be write-protected
// or word-compared, a client's "process memory" is a simulated
// byte-addressable heap whose local data formats follow a
// configurable machine profile (see interweave/internal/arch); this
// preserves the paper's entire data path — twins, word-by-word
// diffing, swizzling, and heterogeneous local formats — at full
// fidelity.
package interweave

import (
	"time"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/core"
	"interweave/internal/mem"
	"interweave/internal/server"
	"interweave/internal/types"
)

// Client is an InterWeave client process: a heap of cached segments
// plus connections to their servers.
type Client = core.Client

// Segment is an opaque handle to an open segment (IW_handle_t).
type Segment = core.Segment

// Options configures a client.
type Options = core.Options

// Addr is a simulated local machine address.
type Addr = mem.Addr

// Block is one typed allocation within a segment.
type Block = mem.Block

// Heap is a client's simulated address space.
type Heap = mem.Heap

// Type describes shared data in machine-independent form; declare
// types with the constructors below or compile them from IDL with
// cmd/iwidl.
type Type = types.Type

// Field is a named struct member.
type Field = types.Field

// Policy selects a relaxed coherence model.
type Policy = coherence.Policy

// Profile describes a simulated machine architecture.
type Profile = arch.Profile

// Server is an InterWeave server; embed one in tests or run
// cmd/iwserver.
type Server = server.Server

// ServerOptions configures a server.
type ServerOptions = server.Options

// NewClient returns a client with an empty heap (the equivalent of
// linking a process against the InterWeave library).
func NewClient(opts Options) (*Client, error) { return core.NewClient(opts) }

// NewServer returns a server, restoring any checkpoint present in
// opts.CheckpointDir.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Type constructors (the output of the IDL compiler).

// Char returns the 8-bit character type.
func Char() *Type { return types.Char() }

// Int16 returns the 16-bit integer type.
func Int16() *Type { return types.Int16() }

// Int32 returns the 32-bit integer type.
func Int32() *Type { return types.Int32() }

// Int64 returns the 64-bit integer type.
func Int64() *Type { return types.Int64() }

// Float32 returns the 32-bit float type.
func Float32() *Type { return types.Float32() }

// Float64 returns the 64-bit float type.
func Float64() *Type { return types.Float64() }

// StringOf returns a fixed-capacity string type.
func StringOf(capacity int) (*Type, error) { return types.StringOf(capacity) }

// PointerTo returns a pointer type; targets may be struct shells from
// NewStruct, which is how recursive types are declared.
func PointerTo(elem *Type) (*Type, error) { return types.PointerTo(elem) }

// ArrayOf returns a fixed-length array type.
func ArrayOf(elem *Type, n int) (*Type, error) { return types.ArrayOf(elem, n) }

// NewStruct returns an incomplete struct shell to be completed with
// SetFields (for recursive types).
func NewStruct(name string) *Type { return types.NewStruct(name) }

// StructOf builds a complete struct type.
func StructOf(name string, fields ...Field) (*Type, error) {
	return types.StructOf(name, fields...)
}

// Coherence policies (paper Section 3.2).

// Full requires the current version at every read-lock acquisition.
func Full() Policy { return coherence.Full() }

// Delta tolerates up to x versions of staleness.
func Delta(x uint32) Policy { return coherence.Delta(x) }

// Temporal tolerates staleness up to d.
func Temporal(d time.Duration) Policy { return coherence.Temporal(d) }

// DiffBased tolerates up to pct percent of stale primitive data
// units.
func DiffBased(pct float64) Policy { return coherence.Diff(pct) }

// Machine profiles for simulated heterogeneity.

// ProfileX86 is 32-bit little-endian with i386 alignment.
func ProfileX86() *Profile { return arch.X86() }

// ProfileAlpha is 64-bit little-endian.
func ProfileAlpha() *Profile { return arch.Alpha() }

// ProfileSparc is 32-bit big-endian.
func ProfileSparc() *Profile { return arch.Sparc() }

// ProfileMIPS64 is 64-bit big-endian.
func ProfileMIPS64() *Profile { return arch.MIPS64() }

// ProfileAMD64 is 64-bit little-endian.
func ProfileAMD64() *Profile { return arch.AMD64() }
