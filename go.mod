module interweave

go 1.22
