package interweave_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"interweave"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

func client(t *testing.T, prof *interweave.Profile) *interweave.Client {
	t.Helper()
	c, err := interweave.NewClient(interweave.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// employeeType declares a struct covering every primitive kind.
func employeeType(t *testing.T) *interweave.Type {
	t.Helper()
	name, err := interweave.StringOf(32)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := interweave.StringOf(4)
	if err != nil {
		t.Fatal(err)
	}
	mgr := interweave.NewStruct("employee")
	pmgr, err := interweave.PointerTo(mgr)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetFields(
		interweave.Field{Name: "id", Type: interweave.Int32()},
		interweave.Field{Name: "salary", Type: interweave.Float64()},
		interweave.Field{Name: "name", Type: name},
		interweave.Field{Name: "grade", Type: tag},
		interweave.Field{Name: "manager", Type: pmgr},
		interweave.Field{Name: "initial", Type: interweave.Char()},
		interweave.Field{Name: "tenure", Type: interweave.Int64()},
		interweave.Field{Name: "rating", Type: interweave.Float32()},
		interweave.Field{Name: "level", Type: interweave.Int16()},
	); err != nil {
		t.Fatal(err)
	}
	return mgr
}

func TestPublicAPIAllKindsAcrossMachines(t *testing.T) {
	addr := startServer(t)
	seg := addr + "/emp"
	emp := employeeType(t)

	// Writer: big-endian 32-bit.
	w := client(t, interweave.ProfileSparc())
	hw, err := w.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WLock(hw); err != nil {
		t.Fatal(err)
	}
	boss, err := w.Alloc(hw, emp, 1, "boss")
	if err != nil {
		t.Fatal(err)
	}
	staff, err := w.Alloc(hw, emp, 3, "staff")
	if err != nil {
		t.Fatal(err)
	}
	bref, err := interweave.RefTo(w, boss)
	if err != nil {
		t.Fatal(err)
	}
	setField := func(r interweave.Ref, field string, set func(interweave.Ref) error) {
		t.Helper()
		f, err := r.Field(field)
		if err != nil {
			t.Fatal(err)
		}
		if err := set(f); err != nil {
			t.Fatalf("%s: %v", field, err)
		}
	}
	setField(bref, "id", func(r interweave.Ref) error { return r.SetI32(1) })
	setField(bref, "salary", func(r interweave.Ref) error { return r.SetF64(250000.5) })
	setField(bref, "name", func(r interweave.Ref) error { return r.SetStr("Grace Hopper") })
	sref, err := interweave.RefTo(w, staff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e, err := sref.Elem(i)
		if err != nil {
			t.Fatal(err)
		}
		setField(e, "id", func(r interweave.Ref) error { return r.SetI32(int32(100 + i)) })
		setField(e, "salary", func(r interweave.Ref) error { return r.SetF64(1000.25 * float64(i+1)) })
		setField(e, "name", func(r interweave.Ref) error { return r.SetStr(fmt.Sprintf("employee %d", i)) })
		setField(e, "grade", func(r interweave.Ref) error { return r.SetStr("L" + string(rune('3'+i))) })
		setField(e, "manager", func(r interweave.Ref) error { return r.SetPtr(boss.Addr) })
		setField(e, "initial", func(r interweave.Ref) error { return r.SetByte(byte('a' + i)) })
		setField(e, "tenure", func(r interweave.Ref) error { return r.SetI64(int64(i) * 1e10) })
		setField(e, "rating", func(r interweave.Ref) error { return r.SetF32(float32(i) + 0.5) })
		setField(e, "level", func(r interweave.Ref) error { return r.SetI16(int16(-i)) })
	}
	if err := w.WUnlock(hw); err != nil {
		t.Fatal(err)
	}

	// Reader: little-endian 64-bit, entering via MIP.
	r := client(t, interweave.ProfileAlpha())
	staffAddr, err := r.MIPToPtr(seg + "#staff")
	if err != nil {
		t.Fatal(err)
	}
	hr, err := r.Open(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RLock(hr); err != nil {
		t.Fatal(err)
	}
	sref, err = interweave.RefAt(r, staffAddr, emp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e, err := sref.Elem(i)
		if err != nil {
			t.Fatal(err)
		}
		check := func(field string, want any, get func(interweave.Ref) (any, error)) {
			t.Helper()
			f, err := e.Field(field)
			if err != nil {
				t.Fatal(err)
			}
			got, err := get(f)
			if err != nil {
				t.Fatalf("%s: %v", field, err)
			}
			if got != want {
				t.Errorf("staff[%d].%s = %v, want %v", i, field, got, want)
			}
		}
		check("id", int32(100+i), func(f interweave.Ref) (any, error) { return f.I32() })
		check("salary", 1000.25*float64(i+1), func(f interweave.Ref) (any, error) { return f.F64() })
		check("name", fmt.Sprintf("employee %d", i), func(f interweave.Ref) (any, error) { return f.Str() })
		check("grade", "L"+string(rune('3'+i)), func(f interweave.Ref) (any, error) { return f.Str() })
		check("initial", byte('a'+i), func(f interweave.Ref) (any, error) { return f.Byte() })
		check("tenure", int64(i)*1e10, func(f interweave.Ref) (any, error) { return f.I64() })
		check("rating", float32(i)+0.5, func(f interweave.Ref) (any, error) { return f.F32() })
		check("level", int16(-i), func(f interweave.Ref) (any, error) { return f.I16() })
		// Follow the swizzled manager pointer.
		mgr, err := e.Field("manager")
		if err != nil {
			t.Fatal(err)
		}
		b, err := mgr.Deref()
		if err != nil {
			t.Fatal(err)
		}
		if b.IsNil() {
			t.Fatal("manager pointer is nil")
		}
		id, err := mustField(t, b, "id").I32()
		if err != nil || id != 1 {
			t.Errorf("manager id = %d, %v", id, err)
		}
		nm, err := mustField(t, b, "name").Str()
		if err != nil || nm != "Grace Hopper" {
			t.Errorf("manager name = %q, %v", nm, err)
		}
	}
	if err := r.RUnlock(hr); err != nil {
		t.Fatal(err)
	}
}

func mustField(t *testing.T, r interweave.Ref, name string) interweave.Ref {
	t.Helper()
	f, err := r.Field(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRefErrors(t *testing.T) {
	addr := startServer(t)
	c := client(t, interweave.ProfileAMD64())
	h, err := c.Open(addr + "/r")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(h, interweave.Int32(), 4, "a")
	if err != nil {
		t.Fatal(err)
	}
	r, err := interweave.RefTo(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.F64(); err == nil {
		t.Error("F64 on int32 ref succeeded")
	}
	if _, err := r.Field("x"); err == nil {
		t.Error("Field on int32 ref succeeded")
	}
	var zero interweave.Ref
	if !zero.IsNil() {
		t.Error("zero Ref not nil")
	}
	if _, err := zero.I32(); err == nil {
		t.Error("read through zero Ref succeeded")
	}
	if _, err := interweave.RefTo(nil, nil); err == nil {
		t.Error("RefTo(nil) succeeded")
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyConstructors(t *testing.T) {
	for _, p := range []interweave.Policy{
		interweave.Full(),
		interweave.Delta(3),
		interweave.Temporal(time.Second),
		interweave.DiffBased(25),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("policy %+v invalid: %v", p, err)
		}
	}
}

func TestArrayRefElem(t *testing.T) {
	addr := startServer(t)
	c := client(t, interweave.ProfileX86())
	h, err := c.Open(addr + "/arr")
	if err != nil {
		t.Fatal(err)
	}
	arr, err := interweave.ArrayOf(interweave.Float64(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	b, err := c.Alloc(h, arr, 1, "grid")
	if err != nil {
		t.Fatal(err)
	}
	r, err := interweave.RefTo(c, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e, err := r.Elem(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetF64(float64(i) * 1.5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Elem(5); err == nil {
		t.Error("out-of-range array Elem succeeded")
	}
	for i := 0; i < 5; i++ {
		e, _ := r.Elem(i)
		if v, _ := e.F64(); v != float64(i)*1.5 {
			t.Errorf("grid[%d] = %v", i, v)
		}
	}
	if err := c.WUnlock(h); err != nil {
		t.Fatal(err)
	}
}

// TestRefKindMismatches drives every typed accessor against a ref of
// the wrong kind: each must fail rather than misinterpret memory.
func TestRefKindMismatches(t *testing.T) {
	addr := startServer(t)
	c := client(t, interweave.ProfileMIPS64())
	h, err := c.Open(addr + "/kinds")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WLock(h); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.WUnlock(h); err != nil {
			t.Fatal(err)
		}
	}()
	s8, err := interweave.StringOf(8)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := interweave.PointerTo(interweave.Int32())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]*interweave.Type{
		"char": interweave.Char(), "i16": interweave.Int16(),
		"i32": interweave.Int32(), "i64": interweave.Int64(),
		"f32": interweave.Float32(), "f64": interweave.Float64(),
		"str": s8, "ptr": pi,
	}
	refs := make(map[string]interweave.Ref)
	for name, typ := range kinds {
		b, err := c.Alloc(h, typ, 1, name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := interweave.RefTo(c, b)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = r
		if r.Addr() != b.Addr || r.Type() != typ {
			t.Errorf("%s: ref identity wrong", name)
		}
	}
	// Each getter/setter succeeds only on its own kind.
	type acc struct {
		kind string
		get  func(interweave.Ref) error
		set  func(interweave.Ref) error
	}
	accs := []acc{
		{"char", func(r interweave.Ref) error { _, err := r.Byte(); return err },
			func(r interweave.Ref) error { return r.SetByte(1) }},
		{"i16", func(r interweave.Ref) error { _, err := r.I16(); return err },
			func(r interweave.Ref) error { return r.SetI16(1) }},
		{"i32", func(r interweave.Ref) error { _, err := r.I32(); return err },
			func(r interweave.Ref) error { return r.SetI32(1) }},
		{"i64", func(r interweave.Ref) error { _, err := r.I64(); return err },
			func(r interweave.Ref) error { return r.SetI64(1) }},
		{"f32", func(r interweave.Ref) error { _, err := r.F32(); return err },
			func(r interweave.Ref) error { return r.SetF32(1) }},
		{"f64", func(r interweave.Ref) error { _, err := r.F64(); return err },
			func(r interweave.Ref) error { return r.SetF64(1) }},
		{"str", func(r interweave.Ref) error { _, err := r.Str(); return err },
			func(r interweave.Ref) error { return r.SetStr("x") }},
		{"ptr", func(r interweave.Ref) error { _, err := r.Ptr(); return err },
			func(r interweave.Ref) error { return r.SetPtr(0) }},
	}
	for _, a := range accs {
		for name, r := range refs {
			wantOK := name == a.kind
			if err := a.get(r); (err == nil) != wantOK {
				t.Errorf("get %s on %s: err=%v", a.kind, name, err)
			}
			if err := a.set(r); (err == nil) != wantOK {
				t.Errorf("set %s on %s: err=%v", a.kind, name, err)
			}
		}
	}
	// Deref on a non-pointer fails; nil-target Deref yields nil ref.
	if _, err := refs["i32"].Deref(); err == nil {
		t.Error("Deref on int succeeded")
	}
	nilRef, err := refs["ptr"].Deref()
	if err != nil || !nilRef.IsNil() {
		t.Errorf("Deref(nil ptr) = %+v, %v", nilRef, err)
	}
}
