package interweave_test

import (
	"fmt"
	"log"
	"net"

	"interweave"
)

// Example reproduces the paper's Figure 1 workflow end to end: a
// writer on one simulated architecture builds a shared structure, and
// a reader on a different architecture maps it through a
// machine-independent pointer and reads it with ordinary accesses.
func Example() {
	// A server would normally be `iwserver` on another host.
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	segName := ln.Addr().String() + "/points"

	point, err := interweave.StructOf("point",
		interweave.Field{Name: "x", Type: interweave.Float64()},
		interweave.Field{Name: "y", Type: interweave.Float64()},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Writer: big-endian 32-bit machine.
	writer, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileSparc()})
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	wh, err := writer.Open(segName) // IW_open_segment
	if err != nil {
		log.Fatal(err)
	}
	if err := writer.WLock(wh); err != nil { // IW_wl_acquire
		log.Fatal(err)
	}
	blk, err := writer.Alloc(wh, point, 1, "origin") // IW_malloc
	if err != nil {
		log.Fatal(err)
	}
	ref, err := interweave.RefTo(writer, blk)
	if err != nil {
		log.Fatal(err)
	}
	x, err := ref.Field("x")
	if err != nil {
		log.Fatal(err)
	}
	if err := x.SetF64(3.5); err != nil { // an ordinary write
		log.Fatal(err)
	}
	if err := writer.WUnlock(wh); err != nil { // IW_wl_release: the diff travels
		log.Fatal(err)
	}

	// Reader: little-endian 64-bit machine, entering through a MIP.
	reader, err := interweave.NewClient(interweave.Options{Profile: interweave.ProfileAlpha()})
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	addr, err := reader.MIPToPtr(segName + "#origin") // IW_mip_to_ptr
	if err != nil {
		log.Fatal(err)
	}
	rh, err := reader.Open(segName)
	if err != nil {
		log.Fatal(err)
	}
	if err := reader.RLock(rh); err != nil { // IW_rl_acquire: fetch
		log.Fatal(err)
	}
	rref, err := interweave.RefAt(reader, addr, point)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := rref.Field("x")
	if err != nil {
		log.Fatal(err)
	}
	v, err := rx.F64()
	if err != nil {
		log.Fatal(err)
	}
	if err := reader.RUnlock(rh); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origin.x = %v\n", v)
	// Output: origin.x = 3.5
}

// ExampleClient_TxCommit shows the transactional extension: two
// segments move to their new versions atomically.
func ExampleClient_TxCommit() {
	srv, err := interweave.NewServer(interweave.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()

	c, err := interweave.NewClient(interweave.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	accounts, err := c.Open(addr + "/accounts")
	if err != nil {
		log.Fatal(err)
	}
	audit, err := c.Open(addr + "/audit")
	if err != nil {
		log.Fatal(err)
	}

	if err := c.TxLock(accounts, audit); err != nil {
		log.Fatal(err)
	}
	balance, err := c.Alloc(accounts, interweave.Int64(), 1, "balance")
	if err != nil {
		log.Fatal(err)
	}
	entries, err := c.Alloc(audit, interweave.Int64(), 1, "entries")
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Heap().WriteI64(balance.Addr, 100); err != nil {
		log.Fatal(err)
	}
	if err := c.Heap().WriteI64(entries.Addr, 1); err != nil {
		log.Fatal(err)
	}
	if err := c.TxCommit(accounts, audit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("versions: %d %d\n", accounts.Version(), audit.Version())
	// Output: versions: 1 1
}
