// Command doccheck enforces the repo's godoc conventions without any
// external linters: every package must carry a package comment
// opening with the standard godoc phrase ("Package <name> ..." for
// libraries, "Command <name> ..." for main packages), and every
// exported top-level declaration (type, function, method, const/var
// group) must carry a doc comment. CI runs it over the whole tree —
// root, internal, cmd, tools, and examples; see
// .github/workflows/ci.yml and the README's documentation rule.
//
// Usage:
//
//	go run ./tools/doccheck . ./internal/... ./cmd/... ./tools/... ./examples/...
//
// Patterns ending in /... recurse. Test files are exempt, as are
// generated files (a "Code generated" header). Exit status is 1 when
// any package or symbol is undocumented, with one line per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, arg := range args {
		for _, d := range expand(arg) {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	bad := 0
	for _, dir := range dirs {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

// expand resolves one argument to the list of directories holding Go
// files: the directory itself, or every subdirectory for /... forms.
func expand(arg string) []string {
	root, recursive := strings.CutSuffix(arg, "/...")
	root = filepath.Clean(root)
	if !recursive {
		return []string{root}
	}
	var dirs []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return nil
		}
		if name := d.Name(); strings.HasPrefix(name, ".") && path != root {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses one package directory and reports undocumented
// exported declarations, returning the number of findings.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for name, pkg := range pkgs {
		switch doc := packageDoc(pkg); {
		case doc == "":
			fmt.Printf("%s: package %s has no package comment\n", dir, name)
			bad++
		case !strings.HasPrefix(doc, docPrefix(name)):
			// main packages are commands: their doc names the binary
			// ("Command iwserver ..."), not the package.
			fmt.Printf("%s: package %s doc comment does not start with %q\n", dir, name, docPrefix(name))
			bad++
		}
		for file, f := range pkg.Files {
			if isGenerated(f) {
				continue
			}
			bad += checkFile(fset, file, f)
		}
	}
	return bad
}

// packageDoc returns the package's doc comment text, or "" when no
// file carries one.
func packageDoc(pkg *ast.Package) string {
	for _, f := range pkg.Files {
		if f.Doc != nil {
			if text := strings.TrimSpace(f.Doc.Text()); text != "" {
				return text
			}
		}
	}
	return ""
}

// docPrefix is the godoc opening phrase required of a package's doc
// comment. For libraries the full "Package <name> " is checked; main
// packages open with "Command " followed by the binary name, which
// the parse tree does not know, so only the phrase is checked.
func docPrefix(pkgName string) string {
	if pkgName == "main" {
		return "Command "
	}
	return "Package " + pkgName + " "
}

// isGenerated detects the standard "Code generated ... DO NOT EDIT."
// marker in a file's leading comments.
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated") && strings.Contains(c.Text, "DO NOT EDIT") {
				return true
			}
		}
	}
	return false
}

// checkFile reports every undocumented exported top-level declaration
// in one file.
func checkFile(fset *token.FileSet, path string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s has no doc comment\n", path, p.Line, what, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// One-line methods are exempt: tag methods of the
			// `func (*Hello) Type() MsgType { return TypeHello }`
			// shape are self-describing, and requiring a comment on
			// each member of such a block buries the real docs.
			oneLiner := d.Recv != nil &&
				fset.Position(d.Pos()).Line == fset.Position(d.End()).Line
			if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil && !oneLiner {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// A group doc, a per-spec doc, or a trailing
						// line comment all count: const blocks often
						// document the family once.
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are internal detail even when the
// method name is capitalized).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
