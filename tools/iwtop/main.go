// Command iwtop is the fleet-wide observability aggregator
// (OBSERVABILITY.md): top(1) for an InterWeave cluster. From one seed
// node it discovers the whole membership over the cluster's own
// RingGet RPC — every member advertises its -metrics-addr in gossip —
// then concurrently scrapes each node's /metrics, /healthz,
// /debug/slo, and /debug/segments, merges the per-node histograms
// bucket-for-bucket into cluster-level latency quantiles, and renders
// a live terminal view that refreshes every -interval.
//
// Usage:
//
//	go run ./tools/iwtop -seed 127.0.0.1:7777             # live view
//	go run ./tools/iwtop -seed 127.0.0.1:7777 -json -once # one machine-readable snapshot
//	go run ./tools/iwtop -metrics host1:9090,host2:9090   # skip discovery, scrape these
//
// Discovery is resilient to the seed dying: every tick retries the
// seed first and then every previously seen live member, so kills,
// restarts, and failovers show up in the next refresh without
// restarting iwtop. With -json the output is one schema-stable
// document (schema "interweave-iwtop/1") per tick; -once emits a
// single tick and exits, and -expect N makes that exit non-zero
// unless at least N nodes were discovered, scraped, and healthy —
// the CI smoke gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/server"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.Seed, "seed", "", "any cluster member's client address; membership (and every node's metrics address) is discovered from it")
	flag.StringVar(&cfg.Metrics, "metrics", "", "comma-separated metrics addresses to scrape directly, skipping discovery")
	flag.DurationVar(&cfg.Interval, "interval", 2*time.Second, "refresh interval")
	flag.DurationVar(&cfg.Timeout, "timeout", 2*time.Second, "per-node scrape timeout")
	flag.BoolVar(&cfg.JSON, "json", false, "emit one schema-stable JSON document per tick instead of the terminal view")
	flag.BoolVar(&cfg.Once, "once", false, "render a single tick and exit")
	flag.IntVar(&cfg.Expect, "expect", 0, "with -once: exit non-zero unless at least this many nodes are scraped and healthy")
	flag.IntVar(&cfg.TopSegments, "top", 12, "segment rows shown/emitted, hottest first")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iwtop:", err)
		os.Exit(1)
	}
}

type config struct {
	Seed        string
	Metrics     string
	Interval    time.Duration
	Timeout     time.Duration
	JSON        bool
	Once        bool
	Expect      int
	TopSegments int
}

// nodeDoc is one node's row in the fleet document. Role and the
// upstream-lag fields are additive to schema interweave-iwtop/1:
// existing consumers that never look at them parse unchanged.
type nodeDoc struct {
	Addr        string `json:"addr"`
	MetricsAddr string `json:"metrics_addr"`
	// Role distinguishes node kinds: "server" owns segments, "proxy"
	// is a read fan-out proxy (DESIGN.md §11) mirroring them.
	Role          string   `json:"role"`
	Dead          bool     `json:"dead,omitempty"`
	Err           string   `json:"err,omitempty"`
	Health        string   `json:"health"`
	Reasons       []string `json:"reasons,omitempty"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Sessions      float64  `json:"sessions"`
	Conns         float64  `json:"conns"`
	RPCCount      uint64   `json:"rpc_count"`
	// Proxy-only: how far the worst mirror trails its upstream, in
	// versions and in seconds since the last confirmed sync.
	UpstreamLagVersions float64  `json:"upstream_lag_versions,omitempty"`
	UpstreamLagSeconds  float64  `json:"upstream_lag_seconds,omitempty"`
	Burning             []string `json:"burning,omitempty"`

	snap     obs.Snapshot
	segments []server.SegmentDebug
}

// histDoc is a merged histogram's summary; quantiles are conservative
// bucket upper bounds, like every quantile this repo reports.
type histDoc struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// segDoc is one segment's cluster-wide row: gauges summed across the
// nodes that hold it (owner plus replicas), version the maximum seen.
type segDoc struct {
	Name        string `json:"name"`
	Owner       string `json:"owner,omitempty"`
	Version     uint32 `json:"version"`
	Subscribers int    `json:"subscribers"`
	Sessions    int    `json:"sessions"`
	Waiters     int    `json:"waiters"`
	GroupFlush  uint64 `json:"group_flushes"`
	GroupRel    uint64 `json:"group_releases"`
	// Resident counts the nodes holding the segment's image in
	// memory; the remainder have evicted it to their journals. Bytes
	// is the summed resident footprint across those nodes.
	Resident int   `json:"resident"`
	Bytes    int64 `json:"mem_bytes"`
}

// fleetDoc is the schema-stable JSON snapshot -json emits per tick.
type fleetDoc struct {
	Schema   string             `json:"schema"`
	At       time.Time          `json:"at"`
	Epoch    uint64             `json:"epoch"`
	Nodes    []nodeDoc          `json:"nodes"`
	Scraped  int                `json:"nodes_scraped"`
	RPC      map[string]histDoc `json:"rpc_seconds"`
	RPCTotal uint64             `json:"rpc_total"`
	Segments []segDoc           `json:"segments"`
}

// app carries the state that survives across ticks: the last known
// live members (discovery fallback) and the previous tick's totals
// (rate display).
type app struct {
	cfg    config
	known  []string
	client *http.Client

	prevAt    time.Time
	prevTotal uint64
}

func run(cfg config, out io.Writer) error {
	if cfg.Seed == "" && cfg.Metrics == "" {
		return fmt.Errorf("need -seed (cluster discovery) or -metrics (direct scrape list)")
	}
	a := &app{cfg: cfg, client: &http.Client{Timeout: cfg.Timeout}}
	for {
		doc := a.tick()
		if cfg.JSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				return err
			}
		} else {
			a.render(out, doc)
		}
		if cfg.Once {
			if cfg.Expect > 0 {
				healthy := 0
				for _, n := range doc.Nodes {
					if n.Err == "" && n.Health == server.HealthOK {
						healthy++
					}
				}
				if healthy < cfg.Expect {
					return fmt.Errorf("%d healthy nodes, expected %d (doc above)", healthy, cfg.Expect)
				}
			}
			return nil
		}
		time.Sleep(cfg.Interval)
	}
}

// tick produces one fleet document: discover, scrape, merge.
func (a *app) tick() fleetDoc {
	doc := fleetDoc{Schema: "interweave-iwtop/1", At: time.Now(), RPC: make(map[string]histDoc)}
	var nodes []nodeDoc
	if a.cfg.Metrics != "" {
		for _, m := range strings.Split(a.cfg.Metrics, ",") {
			if m = strings.TrimSpace(m); m != "" {
				nodes = append(nodes, nodeDoc{Addr: m, MetricsAddr: m})
			}
		}
	} else {
		ms, err := a.discover()
		if err != nil {
			doc.Nodes = []nodeDoc{{Addr: a.cfg.Seed, Err: "discover: " + err.Error(), Health: "unknown"}}
			return doc
		}
		doc.Epoch = ms.Epoch
		ring := cluster.BuildRing(ms)
		for _, m := range ms.Members {
			role := "server"
			if m.Proxy {
				role = "proxy"
			}
			nodes = append(nodes, nodeDoc{Addr: m.Addr, MetricsAddr: m.MetricsAddr, Dead: m.Dead, Role: role})
		}
		defer func() { a.fillOwners(doc.Segments, ring) }()
	}
	var wg sync.WaitGroup
	for i := range nodes {
		if nodes[i].Dead || nodes[i].MetricsAddr == "" {
			if nodes[i].Health == "" {
				nodes[i].Health = "unknown"
			}
			continue
		}
		wg.Add(1)
		go func(n *nodeDoc) {
			defer wg.Done()
			a.scrape(n)
		}(&nodes[i])
	}
	wg.Wait()
	doc.Nodes = nodes
	a.merge(&doc)
	return doc
}

// discover fetches the membership over RingGet, trying the seed first
// and then every member seen alive on a previous tick — so the fleet
// stays visible when the original seed dies.
func (a *app) discover() (protocol.Membership, error) {
	tried := make(map[string]bool)
	var firstErr error
	for _, addr := range append([]string{a.cfg.Seed}, a.known...) {
		if addr == "" || tried[addr] {
			continue
		}
		tried[addr] = true
		ms, err := fetchMembership(addr, a.cfg.Timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		a.known = ms.Live()
		return ms, nil
	}
	return protocol.Membership{}, firstErr
}

// fetchMembership runs one RingGet RPC against a node's client port.
func fetchMembership(addr string, timeout time.Duration) (protocol.Membership, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return protocol.Membership{}, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := protocol.WriteFrame(conn, 1, &protocol.RingGet{}); err != nil {
		return protocol.Membership{}, err
	}
	_, reply, err := protocol.ReadFrame(conn)
	if err != nil {
		return protocol.Membership{}, err
	}
	rr, ok := reply.(*protocol.RingReply)
	if !ok {
		return protocol.Membership{}, fmt.Errorf("%s answered %T to RingGet (not a cluster node?)", addr, reply)
	}
	return rr.Ms, nil
}

// scrape pulls one node's full observability surface.
func (a *app) scrape(n *nodeDoc) {
	n.Health = "unknown"
	resp, err := a.client.Get("http://" + n.MetricsAddr + "/metrics")
	if err != nil {
		n.Err = err.Error()
		return
	}
	snap, err := parseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		n.Err = "parse /metrics: " + err.Error()
		return
	}
	n.snap = snap
	// Direct -metrics scrapes have no membership to learn the role
	// from; the scraped surface itself tells (a proxy exports
	// iw_proxy_uptime_seconds, a server iw_server_uptime_seconds).
	if n.Role == "" {
		if _, isProxy := snap.Gauges["iw_proxy_uptime_seconds"]; isProxy {
			n.Role = "proxy"
		} else {
			n.Role = "server"
		}
	}
	if n.Role == "proxy" {
		n.Sessions = snap.Gauges["iw_proxy_sessions"]
		n.UptimeSeconds = snap.Gauges["iw_proxy_uptime_seconds"]
		n.UpstreamLagVersions = snap.Gauges["iw_proxy_upstream_lag_versions"]
		n.UpstreamLagSeconds = snap.Gauges["iw_proxy_upstream_lag_seconds"]
	} else {
		n.Sessions = snap.Gauges["iw_server_sessions"]
		n.Conns = snap.Gauges["iw_server_conns"]
		n.UptimeSeconds = snap.Gauges["iw_server_uptime_seconds"]
	}
	for k, h := range snap.Histograms {
		if strings.HasPrefix(k, "iw_server_rpc_seconds{") {
			n.RPCCount += h.Count
		}
	}

	// /healthz: the verdict is valid at 200 and 503 alike. Proxies
	// serve the same document shape minus the SLO block.
	var h server.Health
	if err := a.getJSON(n.MetricsAddr, "/healthz", &h); err != nil {
		n.Err = err.Error()
		return
	}
	n.Health, n.Reasons = h.Status, h.Reasons
	for _, o := range h.SLO.Objectives {
		if o.Burning {
			n.Burning = append(n.Burning, o.Name)
		}
	}

	if n.Role == "proxy" {
		return // proxies own no segments, and serve no /debug/segments
	}
	var segs []server.SegmentDebug
	if err := a.getJSON(n.MetricsAddr, "/debug/segments", &segs); err != nil {
		n.Err = err.Error()
		return
	}
	n.segments = segs
}

// getJSON decodes one JSON debug endpoint; non-2xx statuses are fine
// (an overloaded /healthz answers 503 with the verdict as its body).
func (a *app) getJSON(addr, path string, v any) error {
	resp, err := a.client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decode %s: %v", path, err)
	}
	return nil
}

// merge folds every scraped node into the cluster-level view: RPC
// histograms merged bucket-for-bucket (the merged count equals the
// sum of per-node counts), segment rows summed by name.
func (a *app) merge(doc *fleetDoc) {
	merged := make(map[string]obs.HistSnapshot)
	segs := make(map[string]*segDoc)
	for i := range doc.Nodes {
		n := &doc.Nodes[i]
		if n.Err != "" || n.snap.Histograms == nil {
			continue
		}
		doc.Scraped++
		for k, h := range n.snap.Histograms {
			rpc, ok := rpcLabel(k)
			if !ok {
				continue
			}
			if have, ok := merged[rpc]; ok {
				if err := have.Merge(h); err == nil {
					merged[rpc] = have
				}
			} else {
				cp := obs.HistSnapshot{
					Bounds: append([]float64(nil), h.Bounds...),
					Counts: append([]uint64(nil), h.Counts...),
					Sum:    h.Sum, Count: h.Count,
				}
				merged[rpc] = cp
			}
		}
		for _, sd := range n.segments {
			row := segs[sd.Name]
			if row == nil {
				row = &segDoc{Name: sd.Name}
				segs[sd.Name] = row
			}
			if sd.Version > row.Version {
				row.Version = sd.Version
			}
			row.Subscribers += sd.Subscribers
			row.Sessions += sd.Sessions
			row.Waiters += sd.Waiters
			row.GroupFlush += sd.GroupFlushes
			row.GroupRel += sd.GroupReleases
			if sd.Resident {
				row.Resident++
				row.Bytes += sd.MemBytes
			}
		}
	}
	for rpc, h := range merged {
		doc.RPC[rpc] = summarize(h)
		doc.RPCTotal += h.Count
	}
	for _, row := range segs {
		doc.Segments = append(doc.Segments, *row)
	}
	// Hottest first: version is the write count, the natural heat rank.
	sort.Slice(doc.Segments, func(i, j int) bool {
		if doc.Segments[i].Version != doc.Segments[j].Version {
			return doc.Segments[i].Version > doc.Segments[j].Version
		}
		return doc.Segments[i].Name < doc.Segments[j].Name
	})
	if a.cfg.TopSegments > 0 && len(doc.Segments) > a.cfg.TopSegments {
		doc.Segments = doc.Segments[:a.cfg.TopSegments]
	}
}

// fillOwners stamps each merged segment row with the owner the
// discovered ring places it on.
func (a *app) fillOwners(segs []segDoc, ring *cluster.Ring) {
	for i := range segs {
		segs[i].Owner = ring.Owner(segs[i].Name)
	}
}

// rpcLabel extracts the rpc="..." label value from an
// iw_server_rpc_seconds instance key.
func rpcLabel(key string) (string, bool) {
	rest, ok := strings.CutPrefix(key, `iw_server_rpc_seconds{rpc="`)
	if !ok {
		return "", false
	}
	v, ok := strings.CutSuffix(rest, `"}`)
	return v, ok
}

// summarize reduces a merged histogram to conservative quantiles
// (bucket upper bounds, one rung past the ladder for the +Inf tail).
func summarize(s obs.HistSnapshot) histDoc {
	r := histDoc{Count: s.Count}
	if s.Count == 0 || len(s.Bounds) == 0 {
		return r
	}
	r.Mean = s.Sum / float64(s.Count)
	q := func(frac float64) float64 {
		want := uint64(frac * float64(s.Count))
		var cum uint64
		for i, c := range s.Counts {
			cum += c
			if cum > want {
				if i < len(s.Bounds) {
					return s.Bounds[i]
				}
				break
			}
		}
		return s.Bounds[len(s.Bounds)-1] * 4
	}
	r.P50, r.P99 = q(0.50), q(0.99)
	return r
}

// render draws the live terminal view for one tick.
func (a *app) render(out io.Writer, doc fleetDoc) {
	fmt.Fprint(out, "\x1b[H\x1b[2J")
	rate := ""
	if !a.prevAt.IsZero() && doc.RPCTotal >= a.prevTotal {
		secs := doc.At.Sub(a.prevAt).Seconds()
		if secs > 0 {
			rate = fmt.Sprintf("  %.0f rpc/s", float64(doc.RPCTotal-a.prevTotal)/secs)
		}
	}
	a.prevAt, a.prevTotal = doc.At, doc.RPCTotal
	fmt.Fprintf(out, "iwtop — %d/%d nodes scraped, epoch %d%s  (%s)\n\n",
		doc.Scraped, len(doc.Nodes), doc.Epoch, rate, doc.At.Format(time.RFC3339))

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tHEALTH\tUPTIME\tSESSIONS\tCONNS\tRPCS\tLAG\tNOTES")
	for _, n := range doc.Nodes {
		notes := n.Err
		if notes == "" && len(n.Reasons) > 0 {
			notes = strings.Join(n.Reasons, "; ")
		}
		if n.Dead {
			notes = strings.TrimSpace("dead " + notes)
		}
		lag := "-"
		if n.Role == "proxy" {
			lag = fmt.Sprintf("%.0fv/%.1fs", n.UpstreamLagVersions, n.UpstreamLagSeconds)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.0f\t%.0f\t%d\t%s\t%s\n",
			n.Addr, n.Role, n.Health, (time.Duration(n.UptimeSeconds) * time.Second).String(),
			n.Sessions, n.Conns, n.RPCCount, lag, notes)
	}
	tw.Flush()

	if len(doc.RPC) > 0 {
		fmt.Fprintln(out, "\nCLUSTER RPC LATENCY (merged)")
		tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "RPC\tCOUNT\tMEAN\tP50\tP99")
		rpcs := make([]string, 0, len(doc.RPC))
		for rpc := range doc.RPC {
			rpcs = append(rpcs, rpc)
		}
		sort.Slice(rpcs, func(i, j int) bool { return doc.RPC[rpcs[i]].Count > doc.RPC[rpcs[j]].Count })
		for _, rpc := range rpcs {
			h := doc.RPC[rpc]
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", rpc, h.Count,
				fmtSeconds(h.Mean), fmtSeconds(h.P50), fmtSeconds(h.P99))
		}
		tw.Flush()
	}

	if len(doc.Segments) > 0 {
		fmt.Fprintln(out, "\nHOTTEST SEGMENTS")
		tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SEGMENT\tOWNER\tVERSION\tSUBS\tSESSIONS\tWAITERS\tGC-FLUSH\tGC-REL\tRES\tBYTES")
		for _, s := range doc.Segments {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				s.Name, s.Owner, s.Version, s.Subscribers, s.Sessions, s.Waiters, s.GroupFlush, s.GroupRel, s.Resident, s.Bytes)
		}
		tw.Flush()
	}
}

// fmtSeconds renders a duration-in-seconds with a sensible unit.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
