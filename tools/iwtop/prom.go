package main

// Prometheus text-format parser (exposition format 0.0.4), the
// inverse of obs.Registry.WritePrometheus: it rebuilds an
// obs.Snapshot from a /metrics scrape so per-node snapshots can be
// merged with obs.Snapshot.Merge. Only what the obs writer emits is
// supported — counters, gauges, and histograms with cumulative le
// buckets plus _sum/_count — which is exactly what every InterWeave
// node serves.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"interweave/internal/obs"
)

// histAcc accumulates one histogram instance's exposition lines until
// the scrape is fully read.
type histAcc struct {
	bounds []float64
	cum    []uint64 // cumulative counts per finite bound, in bound order
	infCum uint64   // cumulative count at le="+Inf"
	sum    float64
	count  uint64
}

// parseProm reads one Prometheus text scrape into a Snapshot keyed
// exactly like obs.Registry.Snapshot (name{k="v",...}), so snapshots
// from different nodes merge bucket-for-bucket.
func parseProm(r io.Reader) (obs.Snapshot, error) {
	snap := obs.Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]obs.HistSnapshot),
	}
	types := make(map[string]string)
	hists := make(map[string]*histAcc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return snap, err
		}
		fam, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, s); base != name && types[base] == "histogram" {
				fam, suffix = base, s
				break
			}
		}
		if suffix == "" {
			switch types[name] {
			case "counter":
				u, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					return snap, fmt.Errorf("counter %s: %w", name, err)
				}
				snap.Counters[instanceKey(name, labels)] = u
			default: // gauge, or untyped — keep as gauge
				f, err := strconv.ParseFloat(value, 64)
				if err != nil {
					return snap, fmt.Errorf("gauge %s: %w", name, err)
				}
				snap.Gauges[instanceKey(name, labels)] = f
			}
			continue
		}
		le := ""
		if suffix == "_bucket" {
			labels, le = splitLe(labels)
		}
		k := instanceKey(fam, labels)
		acc := hists[k]
		if acc == nil {
			acc = &histAcc{}
			hists[k] = acc
		}
		switch suffix {
		case "_bucket":
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return snap, fmt.Errorf("bucket %s: %w", k, err)
			}
			if le == "+Inf" {
				acc.infCum = cum
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return snap, fmt.Errorf("bucket bound %s le=%q: %w", k, le, err)
				}
				acc.bounds = append(acc.bounds, b)
				acc.cum = append(acc.cum, cum)
			}
		case "_sum":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return snap, fmt.Errorf("sum %s: %w", k, err)
			}
			acc.sum = f
		case "_count":
			u, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return snap, fmt.Errorf("count %s: %w", k, err)
			}
			acc.count = u
		}
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	for k, acc := range hists {
		counts := make([]uint64, len(acc.bounds)+1)
		prev := uint64(0)
		for i, c := range acc.cum {
			if c < prev {
				return snap, fmt.Errorf("histogram %s: non-cumulative buckets", k)
			}
			counts[i] = c - prev
			prev = c
		}
		if acc.infCum < prev {
			return snap, fmt.Errorf("histogram %s: +Inf bucket below last bound", k)
		}
		counts[len(acc.bounds)] = acc.infCum - prev
		snap.Histograms[k] = obs.HistSnapshot{
			Bounds: acc.bounds, Counts: counts, Sum: acc.sum, Count: acc.count,
		}
	}
	return snap, nil
}

// parseSample splits one exposition line into its metric name, label
// set (unescaped values), and value text.
func parseSample(line string) (string, []obs.Label, string, error) {
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexByte(line, ' ')
	if brace == -1 || (sp != -1 && sp < brace) {
		if sp == -1 {
			return "", nil, "", fmt.Errorf("malformed sample %q", line)
		}
		return line[:sp], nil, strings.TrimSpace(line[sp+1:]), nil
	}
	name := line[:brace]
	rest := line[brace+1:]
	var labels []obs.Label
	for {
		rest = strings.TrimLeft(rest, ", ")
		if rest == "" {
			return "", nil, "", fmt.Errorf("unterminated labels in %q", line)
		}
		if rest[0] == '}' {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq == -1 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, "", fmt.Errorf("malformed label in %q", line)
		}
		key := rest[:eq]
		val, remain, err := scanQuoted(rest[eq+1:])
		if err != nil {
			return "", nil, "", fmt.Errorf("%v in %q", err, line)
		}
		labels = append(labels, obs.L(key, val))
		rest = remain
	}
	return name, labels, strings.TrimSpace(rest), nil
}

// scanQuoted consumes a double-quoted, backslash-escaped string at
// the start of s, returning the unescaped value and the remainder
// after the closing quote.
func scanQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted value")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \" and \\ unescape to the character itself
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// splitLe strips the le label (the obs writer always appends it last,
// but any position is accepted) and returns the remaining labels.
func splitLe(labels []obs.Label) ([]obs.Label, string) {
	le := ""
	out := labels[:0]
	for _, l := range labels {
		if l.Key == "le" {
			le = l.Value
			continue
		}
		out = append(out, l)
	}
	return out, le
}

// instanceKey mirrors the obs registry's snapshot key format,
// name{k="v",...} with raw (unescaped) label values, so parsed
// scrapes index identically to in-process snapshots.
func instanceKey(family string, labels []obs.Label) string {
	if len(labels) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
