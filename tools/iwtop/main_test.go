package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"interweave/internal/cluster"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/server"
)

// fleetNode is one in-process cluster member with its metrics surface
// mounted on a real HTTP listener, exactly as iwserver arranges it.
type fleetNode struct {
	addr        string
	metricsAddr string
	reg         *obs.Registry
	srv         *server.Server
	node        *cluster.Node
	hsrv        *http.Server
	ln, mln     net.Listener
}

// kill emulates a node death: the RPC listener and every metrics
// connection (including keep-alive ones iwtop may hold) go away.
func (n *fleetNode) kill() {
	_ = n.ln.Close()
	_ = n.hsrv.Close()
	n.node.Close()
	_ = n.srv.Close()
}

// startFleet boots n cluster servers, each advertising its metrics
// listener through membership gossip.
func startFleet(t *testing.T, n int) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &fleetNode{
			addr: ln.Addr().String(), metricsAddr: mln.Addr().String(),
			reg: obs.NewRegistry(), ln: ln, mln: mln,
		}
		addrs[i] = nodes[i].addr
	}
	for i, fn := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		fn.node = cluster.NewNode(cluster.Options{
			Self: fn.addr, Peers: peers, Replicas: 1,
			MetricsAddr: fn.metricsAddr, Metrics: fn.reg, Logf: t.Logf,
		})
		srv, err := server.New(server.Options{
			Cluster: fn.node, Metrics: fn.reg, Logf: t.Logf,
			SLOSampleEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fn.srv = srv
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(fn.reg))
		mux.Handle("/healthz", srv.HealthzHandler())
		mux.Handle("/debug/slo", srv.SLOHandler())
		mux.HandleFunc("/debug/segments", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(srv.DebugSegments())
		})
		fn.hsrv = &http.Server{Handler: mux}
		go func(fn *fleetNode) { _ = fn.srv.Serve(fn.ln) }(fn)
		go func(fn *fleetNode) { _ = fn.hsrv.Serve(fn.mln) }(fn)
		fn.node.Start()
		t.Cleanup(fn.kill)
	}
	return nodes
}

// drive sends a little raw-protocol traffic at addr so the node's RPC
// histograms are non-empty: Hello, OpenSegment, ReadLock.
func drive(t *testing.T, addr, seg string) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	id := uint32(1)
	call := func(m protocol.Message) protocol.Message {
		t.Helper()
		if err := protocol.WriteFrame(conn, id, m); err != nil {
			t.Fatal(err)
		}
		for {
			gotID, reply, err := protocol.ReadFrame(conn)
			if err != nil {
				t.Fatal(err)
			}
			if gotID == id {
				id++
				return reply
			}
		}
	}
	if _, ok := call(&protocol.Hello{ClientName: "iwtop-test", Profile: "x86-32le"}).(*protocol.Ack); !ok {
		t.Fatal("hello not acked")
	}
	call(&protocol.OpenSegment{Name: seg, Create: true}) // OpenReply or Redirect, both count
	call(&protocol.ReadLock{Seg: seg})
}

// rpcCountFromReg sums every iw_server_rpc_seconds instance in a live
// registry — the ground truth a node's scrape must agree with.
func rpcCountFromReg(reg *obs.Registry) uint64 {
	var total uint64
	for k, h := range reg.Snapshot().Histograms {
		if rpc, ok := rpcLabel(k); ok && rpc != "" {
			total += h.Count
		}
	}
	return total
}

// TestFleetDiscoveryMergeAndKill is the end-to-end aggregation check:
// three nodes discovered from one seed, the merged cluster histogram
// count equal to the sum of the per-node counts, and a killed node
// reflected on the next tick without restarting iwtop.
func TestFleetDiscoveryMergeAndKill(t *testing.T) {
	nodes := startFleet(t, 3)
	for _, fn := range nodes {
		drive(t, fn.addr, "iwtop-seg")
	}

	// The fleet runs without a heartbeat loop so no background gossip
	// perturbs the registries mid-assertion; push each node's
	// metrics-addr annotation by hand instead. The merge cascade is
	// asynchronous, so poll until one tick sees all three
	// advertisements AND its scraped totals agree with the live
	// registries — equality proves no merge traffic was in flight
	// between the scrape and the ground-truth read.
	for _, fn := range nodes {
		fn.node.Gossip()
	}
	a := &app{
		cfg:    config{Seed: nodes[0].addr, Timeout: 2 * time.Second, TopSegments: 12},
		client: &http.Client{Timeout: 2 * time.Second},
	}
	var doc fleetDoc
	var perNode, ground uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		doc = a.tick()
		perNode, ground = 0, 0
		for _, n := range doc.Nodes {
			perNode += n.RPCCount
		}
		for _, fn := range nodes {
			ground += rpcCountFromReg(fn.reg)
		}
		if len(doc.Nodes) == 3 && doc.Scraped == 3 &&
			doc.RPCTotal == perNode && doc.RPCTotal == ground {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: nodes %d scraped %d rpcTotal %d perNode %d ground %d: %+v",
				len(doc.Nodes), doc.Scraped, doc.RPCTotal, perNode, ground, doc.Nodes)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, n := range doc.Nodes {
		if n.Err != "" || n.Health != server.HealthOK {
			t.Fatalf("node %s: health %q err %q, want ok", n.Addr, n.Health, n.Err)
		}
		if n.MetricsAddr == "" {
			t.Fatalf("node %s advertised no metrics address", n.Addr)
		}
		if n.UptimeSeconds <= 0 {
			t.Fatalf("node %s uptime %v, want > 0", n.Addr, n.UptimeSeconds)
		}
	}

	if doc.RPC["Hello"].Count != 3 {
		t.Fatalf("merged Hello count = %d, want 3 (one per node)", doc.RPC["Hello"].Count)
	}

	// Every segment row names its ring owner.
	for _, s := range doc.Segments {
		if s.Owner == "" {
			t.Fatalf("segment %s has no owner", s.Name)
		}
	}

	// Kill a non-seed node: the very next tick reports it unreachable,
	// with the survivors still merged — no iwtop restart.
	nodes[2].kill()
	doc = a.tick()
	if doc.Scraped != 2 {
		t.Fatalf("scraped %d after kill, want 2: %+v", doc.Scraped, doc.Nodes)
	}
	killed := false
	for _, n := range doc.Nodes {
		if n.Addr == nodes[2].addr && n.Err != "" {
			killed = true
		}
	}
	if !killed {
		t.Fatalf("killed node %s not reported unreachable: %+v", nodes[2].addr, doc.Nodes)
	}

	// Kill the seed too: discovery falls back to the surviving member
	// learned on an earlier tick.
	nodes[0].kill()
	doc = a.tick()
	if doc.Scraped != 1 {
		t.Fatalf("scraped %d after seed kill, want 1: %+v", doc.Scraped, doc.Nodes)
	}
}

// TestParseReverseRoundTrip feeds a registry's own Prometheus output
// back through the scrape parser and requires the exact snapshot —
// counters, gauges (incl. collector gauges), histogram buckets, and
// escaped label values — to survive the round trip.
func TestParseReverseRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rt_ops_total", "ops", obs.L("path", `a\b"c`+"\n")).Add(42)
	reg.Gauge("rt_depth", "depth").Set(-7)
	h := reg.Histogram("rt_seconds", "latency", obs.DurationBuckets, obs.L("rpc", "X"))
	for _, v := range []float64{1e-6, 5e-4, 0.3, 99} {
		h.Observe(v)
	}
	reg.RegisterCollector(func(emit obs.GaugeEmit) {
		emit("rt_col", "collected", 3.5, obs.L("seg", "s1"))
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := parseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := reg.Snapshot()
	if !reflect.DeepEqual(parsed.Counters, want.Counters) {
		t.Fatalf("counters:\n got %+v\nwant %+v", parsed.Counters, want.Counters)
	}
	if !reflect.DeepEqual(parsed.Gauges, want.Gauges) {
		t.Fatalf("gauges:\n got %+v\nwant %+v", parsed.Gauges, want.Gauges)
	}
	if !reflect.DeepEqual(parsed.Histograms, want.Histograms) {
		t.Fatalf("histograms:\n got %+v\nwant %+v", parsed.Histograms, want.Histograms)
	}
}
