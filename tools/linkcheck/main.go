// Command linkcheck validates markdown cross-references offline: for
// every [text](target) link in the given files it checks that a
// relative target exists on disk and, when the target carries a
// #fragment, that the destination file has a heading whose GitHub
// anchor slug matches. External links (http, https, mailto) are
// skipped — CI must not depend on the network. Exit status is 1 when
// any link is broken, with one line per finding.
//
// Usage:
//
//	go run ./tools/linkcheck README.md DESIGN.md OBSERVABILITY.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

var headingRe = regexp.MustCompile("(?m)^#{1,6} +(.+?) *$")

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md> ...")
		os.Exit(2)
	}
	bad := 0
	for _, file := range os.Args[1:] {
		bad += checkFile(file)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", bad)
		os.Exit(1)
	}
}

// checkFile validates every link in one markdown file, returning the
// number of broken ones.
func checkFile(file string) int {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Printf("%s: %v\n", file, err)
		return 1
	}
	text := string(data)
	bad := 0
	for _, m := range linkRe.FindAllStringSubmatchIndex(text, -1) {
		target := text[m[2]:m[3]]
		line := 1 + strings.Count(text[:m[0]], "\n")
		if isExternal(target) {
			continue
		}
		path, frag, _ := strings.Cut(target, "#")
		dest := file
		if path != "" {
			dest = filepath.Join(filepath.Dir(file), path)
			if info, err := os.Stat(dest); err != nil {
				fmt.Printf("%s:%d: broken link %s: %v\n", file, line, target, err)
				bad++
				continue
			} else if info.IsDir() {
				continue // directory links render as listings
			}
		}
		if frag == "" {
			continue
		}
		if !strings.HasSuffix(dest, ".md") {
			continue // fragments into non-markdown are out of scope
		}
		if !hasAnchor(dest, frag) {
			fmt.Printf("%s:%d: link %s: no heading with anchor #%s in %s\n", file, line, target, frag, dest)
			bad++
		}
	}
	return bad
}

func isExternal(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub slug equals frag.
func hasAnchor(file, frag string) bool {
	data, err := os.ReadFile(file)
	if err != nil {
		return false
	}
	seen := make(map[string]int)
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		s := slug(m[1])
		// GitHub deduplicates repeated headings as slug, slug-1, ...
		if n := seen[s]; n > 0 {
			s = fmt.Sprintf("%s-%d", s, n)
		}
		seen[slug(m[1])]++
		if s == frag {
			return true
		}
	}
	return false
}

// slug converts a heading to its GitHub anchor: lowercase, markup and
// punctuation stripped, spaces to dashes.
func slug(heading string) string {
	h := strings.TrimSpace(heading)
	// Strip inline code/emphasis markers and link syntax before
	// slugging, the way GitHub renders first and anchors second.
	h = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).ReplaceAllString(h, "$1")
	h = strings.NewReplacer("`", "", "*", "").Replace(h)
	var sb strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r == ' ' || r == '-':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
