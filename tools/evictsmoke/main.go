// Command evictsmoke asserts the cold-segment eviction contract
// (DESIGN.md §12) against a live server after a loadgen run whose
// working set outgrows the server's -max-resident-bytes budget. It is
// the check behind `make evict-smoke`.
//
// It reads the loadgen JSON report and requires a clean run — every
// session opened, zero op errors — because eviction must be invisible
// to clients: a segment faulting in from its journal serves the same
// bytes a resident one would. Then it polls the server's /metrics
// until:
//
//   - eviction actually happened: iw_server_segment_evictions_total
//     and iw_server_segment_faults_total are both positive (a budget
//     four times smaller than the working set cannot be met without
//     dropping and reloading segments);
//   - the budget holds: iw_server_resident_bytes is at most -budget
//     plus one average segment of slack (the evictor's granularity is
//     a whole segment, so "under budget ± one segment" is the
//     strongest steady-state claim it can make).
//
// The polling window (-timeout) covers the evictor's sweep cadence:
// the loadgen's last touches may leave the server momentarily over
// budget until the next pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	report := flag.String("report", "", "loadgen JSON report to validate")
	metrics := flag.String("metrics", "", "server metrics address (host:port)")
	budget := flag.Int64("budget", 0, "the -max-resident-bytes the server was started with")
	slack := flag.Int64("slack", 0, "allowed bytes over budget (0 = one observed average segment)")
	timeout := flag.Duration("timeout", 15*time.Second, "deadline for the metrics conditions to hold")
	flag.Parse()

	if err := run(*report, *metrics, *budget, *slack, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "evictsmoke:", err)
		os.Exit(1)
	}
}

func run(report, metrics string, budget, slack int64, timeout time.Duration) error {
	if err := checkReport(report); err != nil {
		return err
	}
	if budget <= 0 {
		return fmt.Errorf("-budget must match the server's -max-resident-bytes")
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		m, err := scrape(metrics)
		if err != nil {
			lastErr = fmt.Errorf("scraping %s: %w", metrics, err)
		} else {
			lastErr = check(m, budget, slack)
			if lastErr == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("conditions not met within %s: %w", timeout, lastErr)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// check evaluates the eviction conditions against one scrape.
func check(m map[string]float64, budget, slack int64) error {
	evictions := m["iw_server_segment_evictions_total"]
	faults := m["iw_server_segment_faults_total"]
	resident := int64(m["iw_server_resident_bytes"])
	segs := m["iw_server_segments_resident"]
	if evictions <= 0 {
		return fmt.Errorf("no evictions recorded — the working set never outgrew the budget")
	}
	if faults <= 0 {
		return fmt.Errorf("no segment faults recorded — nothing evicted was ever touched again")
	}
	allowed := slack
	if allowed <= 0 {
		// One segment of slack, estimated from the live average; the
		// floor covers the degenerate all-evicted scrape.
		allowed = 4096
		if segs > 0 {
			if avg := resident / int64(segs); avg > allowed {
				allowed = avg
			}
		}
	}
	if resident > budget+allowed {
		return fmt.Errorf("resident bytes %d exceed budget %d by more than one segment (%d allowed)",
			resident, budget, allowed)
	}
	fmt.Printf("evictsmoke: ok — %.0f evictions, %.0f faults, %d resident bytes across %.0f segments (budget %d)\n",
		evictions, faults, resident, segs, budget)
	return nil
}

// checkReport validates the loadgen run: every session opened and zero
// client-visible op errors — eviction must not surface to clients.
func checkReport(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Schema   string `json:"schema"`
		Sessions struct {
			Target  int   `json:"target"`
			Open    int   `json:"open"`
			Refused int64 `json:"refused"`
		} `json:"sessions"`
		Ops struct {
			Done   int64 `json:"done"`
			Errors int64 `json:"errors"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "interweave-loadgen/") {
		return fmt.Errorf("%s has schema %q, want interweave-loadgen/*", path, rep.Schema)
	}
	if rep.Sessions.Open != rep.Sessions.Target || rep.Sessions.Refused != 0 {
		return fmt.Errorf("sessions: opened %d/%d, %d refused", rep.Sessions.Open, rep.Sessions.Target, rep.Sessions.Refused)
	}
	if rep.Ops.Errors != 0 {
		return fmt.Errorf("%d op errors (of %d ops) — eviction leaked into client-visible failures", rep.Ops.Errors, rep.Ops.Done)
	}
	if rep.Ops.Done == 0 {
		return fmt.Errorf("no operations completed")
	}
	fmt.Printf("evictsmoke: loadgen clean — %d ops, 0 errors, %d sessions\n", rep.Ops.Done, rep.Sessions.Open)
	return nil
}

// scrape fetches a /metrics endpoint and parses the unlabelled
// Prometheus text samples into a name -> value map; labelled series
// (histogram buckets, per-segment gauges) are skipped — the smoke
// only reads scalar counters and gauges.
func scrape(addr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 8<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}
