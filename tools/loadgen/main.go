// Command loadgen is the open-loop session-scale load generator
// behind the 100k-sessions-per-server claim (EXPERIMENTS.md,
// CAPACITY.md). It opens a large number of logical sessions —
// multiplexed over a handful of TCP connections via core.DialMux —
// against one server, drives ReadLock/ReadUnlock traffic at a fixed
// target rate, and reports SLO latency quantiles computed from an
// obs histogram.
//
// The generator is open-loop: operations are issued on a fixed
// schedule regardless of how fast earlier ones complete, and each
// operation's latency is measured from its INTENDED start time, so
// queueing delay under overload is counted rather than hidden
// (no coordinated omission).
//
// Sessions carry heterogeneous architecture profiles (all five
// arch.Profiles() in rotation), a background writer pool keeps the
// hot segments churning so read locks exercise the diff path, and an
// optional -subscribe fraction subscribes sessions to their segment
// to exercise the notification fan-out and shed path.
//
// -read-ratio mixes write-path traffic into the session schedule: a
// scheduled op is a ReadLock with probability r and a no-op
// WriteLock/WriteUnlock pair otherwise (exercising lock grants and,
// through a proxy, write forwarding — version churn stays with the
// writer pool). -via-proxy points the session connections at a read
// fan-out proxy (DESIGN.md §11) while the seeder and writer pool keep
// talking to the origin; the report then carries the read-staleness
// percentiles — how many versions behind the writers' last commit
// each read's answer was — which is the tier's staleness bound made
// measurable.
//
// Usage:
//
//	go run ./tools/loadgen                         # self-contained: in-process server
//	go run ./tools/loadgen -sessions 100000 -duration 30s -json slo.json
//	go run ./tools/loadgen -addr 127.0.0.1:7777    # against a running iwserver
//
// With -json the run writes a machine-readable SLO document
// (schema "interweave-loadgen/1"); EXPERIMENTS.md explains each
// field. The process exits non-zero when the run could not hold the
// requested session count (refused or evicted sessions), so CI can
// gate on it.
//
// The report also carries the server's own health verdict: for the
// in-process server it is computed directly from the server's SLO
// tracker after the measurement window; for an external server, point
// -health at its /healthz endpoint. With -slo-gate the run
// additionally fails when that verdict is not "ok" — the generator
// consumes the server's burn-rate math instead of re-deriving it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"interweave/internal/arch"
	"interweave/internal/coherence"
	"interweave/internal/core"
	"interweave/internal/mem"
	"interweave/internal/obs"
	"interweave/internal/protocol"
	"interweave/internal/server"
	"interweave/internal/types"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.Addr, "addr", "", "server address (empty = start an in-process server)")
	flag.IntVar(&cfg.Sessions, "sessions", 1000, "logical sessions to hold open")
	flag.IntVar(&cfg.Conns, "conns", 16, "TCP connections to multiplex the sessions over")
	flag.Float64Var(&cfg.Rate, "rate", 2000, "target ReadLock issue rate, ops/sec, open-loop")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measurement duration")
	flag.IntVar(&cfg.Segments, "segments", 16, "hot segments the sessions read")
	flag.IntVar(&cfg.Writers, "writers", 2, "background writer clients churning the segments")
	flag.DurationVar(&cfg.WriteEvery, "write-every", 20*time.Millisecond, "per-writer release interval")
	flag.Float64Var(&cfg.Subscribe, "subscribe", 0, "fraction of sessions subscribing to their segment (exercises notify/shed)")
	flag.Float64Var(&cfg.ReadRatio, "read-ratio", 1, "fraction of scheduled session ops that are reads; the rest are no-op write lock/unlock pairs")
	flag.StringVar(&cfg.ViaProxy, "via-proxy", "", "route the session connections through this proxy address (seeder and writers stay on -addr)")
	flag.IntVar(&cfg.OpWorkers, "op-workers", 256, "concurrent operation issuers")
	flag.IntVar(&cfg.MaxSessions, "max-sessions", 0, "in-process server session cap (0 = unlimited)")
	flag.BoolVar(&cfg.GroupCommit, "group-commit", false, "enable group commit on the in-process server")
	flag.StringVar(&cfg.JSONOut, "json", "", "write the SLO document to this path")
	flag.StringVar(&cfg.Health, "health", "", "external server's /healthz URL, fetched after the run (in-process runs compute it directly)")
	flag.BoolVar(&cfg.SLOGate, "slo-gate", false, "exit non-zero when the post-run health verdict is not \"ok\"")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	Addr        string        `json:"addr"`
	Sessions    int           `json:"sessions"`
	Conns       int           `json:"conns"`
	Rate        float64       `json:"rate_ops_per_sec"`
	Duration    time.Duration `json:"-"`
	DurationStr string        `json:"duration"`
	Segments    int           `json:"segments"`
	Writers     int           `json:"writers"`
	WriteEvery  time.Duration `json:"-"`
	Subscribe   float64       `json:"subscribe_fraction"`
	ReadRatio   float64       `json:"read_ratio"`
	ViaProxy    string        `json:"via_proxy,omitempty"`
	OpWorkers   int           `json:"op_workers"`
	MaxSessions int           `json:"max_sessions"`
	GroupCommit bool          `json:"group_commit"`
	JSONOut     string        `json:"-"`
	Health      string        `json:"health_url,omitempty"`
	SLOGate     bool          `json:"slo_gate"`
}

// loadSession is one held session plus the per-session client state a
// full Client would keep: which segment it reads and the version it
// last saw.
type loadSession struct {
	s      *core.MuxSession
	seg    string
	segIdx int
	have   atomic.Uint32
}

// storeMax raises a monotonic version register.
func storeMax(a *atomic.Uint32, v uint32) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// report is the -json SLO document.
type report struct {
	Schema   string `json:"schema"`
	When     string `json:"when"`
	Go       string `json:"go"`
	NumCPU   int    `json:"num_cpu"`
	Config   config `json:"config"`
	Sessions struct {
		Target  int   `json:"target"`
		Open    int   `json:"open"`
		Refused int64 `json:"refused"`
		Evicted int64 `json:"evicted"`
	} `json:"sessions"`
	Ops struct {
		Issued   int64   `json:"issued"`
		Done     int64   `json:"done"`
		Errors   int64   `json:"errors"`
		Rate     float64 `json:"achieved_ops_per_sec"`
		Fresh    int64   `json:"fresh"`
		Diffs    int64   `json:"diffs"`
		Writes   int64   `json:"writes"`
		Notifies int64   `json:"notifies"`
	} `json:"ops"`
	ReadLock histReport `json:"readlock_seconds"`
	// Staleness is the observed read staleness in versions: for each
	// read, how far the answered version lagged the writers' newest
	// committed version at that moment. Always ~0 against the origin;
	// through a proxy it measures the tier's staleness bound.
	Staleness histReport `json:"read_staleness_versions"`
	// Health is the server's own post-run verdict (in-process SLO
	// tracker, or a -health fetch); absent when neither is available.
	Health *server.Health `json:"health,omitempty"`
}

// histReport is an SLO summary of one latency histogram. Quantiles
// are conservative: each reports the upper bound of the bucket the
// quantile falls in.
type histReport struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

func summarize(s obs.HistSnapshot) histReport {
	r := histReport{Count: s.Count}
	if s.Count == 0 {
		return r
	}
	r.Mean = s.Sum / float64(s.Count)
	q := func(frac float64) float64 {
		want := uint64(frac * float64(s.Count))
		var cum uint64
		for i, c := range s.Counts {
			cum += c
			if cum > want {
				if i < len(s.Bounds) {
					return s.Bounds[i]
				}
				return s.Bounds[len(s.Bounds)-1] * 4 // +Inf bucket: one rung past the ladder
			}
		}
		return s.Bounds[len(s.Bounds)-1] * 4
	}
	r.P50, r.P90, r.P99, r.P999 = q(0.50), q(0.90), q(0.99), q(0.999)
	return r
}

func run(cfg config) error {
	cfg.DurationStr = cfg.Duration.String()
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.Segments < 1 {
		cfg.Segments = 1
	}

	// Server: in-process unless targeting a running one. The
	// in-process server carries its own registry and SLO tracker so
	// the report can include the server-side verdict; sampling is
	// manual (disabled loop) so the two samples bracket the
	// measurement window exactly.
	var inproc *server.Server
	if cfg.Addr == "" {
		srv, err := server.New(server.Options{
			MaxSessions:    cfg.MaxSessions,
			GroupCommit:    cfg.GroupCommit,
			Metrics:        obs.NewRegistry(),
			SLOSampleEvery: -1,
		})
		if err != nil {
			return err
		}
		inproc = srv
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		cfg.Addr = ln.Addr().String()
		fmt.Printf("in-process server on %s\n", cfg.Addr)
	}

	// Seed the hot segments with one int32 array each.
	segNames := make([]string, cfg.Segments)
	seeder, err := core.NewClient(core.Options{Name: "loadgen-seeder"})
	if err != nil {
		return err
	}
	for i := range segNames {
		segNames[i] = fmt.Sprintf("%s/load-%d", cfg.Addr, i)
		if err := seedSegment(seeder, segNames[i]); err != nil {
			_ = seeder.Close()
			return fmt.Errorf("seeding %s: %w", segNames[i], err)
		}
	}

	// Background writers churn the segments so read locks see diffs.
	// committed[i] tracks the newest version the writer pool has
	// released for segment i — the reference the read-staleness
	// percentiles are measured against.
	committed := make([]atomic.Uint32, len(segNames))
	stopWriters := make(chan struct{})
	var writerWG sync.WaitGroup
	var writeErrs atomic.Int64
	for w := 0; w < cfg.Writers; w++ {
		prof := arch.Profiles()[w%len(arch.Profiles())]
		wc, err := core.NewClient(core.Options{Name: fmt.Sprintf("loadgen-writer-%d", w), Profile: prof})
		if err != nil {
			_ = seeder.Close()
			return err
		}
		defer wc.Close()
		writerWG.Add(1)
		go func(w int, wc *core.Client) {
			defer writerWG.Done()
			runWriter(w, wc, cfg, segNames, committed, stopWriters, &writeErrs)
		}(w, wc)
	}
	_ = seeder.Close()

	// Open the sessions: cfg.Sessions spread over cfg.Conns
	// connections, heterogeneous profiles in rotation.
	var evicted atomic.Int64
	var notifies atomic.Int64
	profiles := arch.Profiles()
	dialAddr := cfg.Addr
	if cfg.ViaProxy != "" {
		dialAddr = cfg.ViaProxy
		fmt.Printf("sessions via proxy %s\n", dialAddr)
	}
	mcs := make([]*core.MuxConn, cfg.Conns)
	for i := range mcs {
		mc, err := core.DialMux(dialAddr, core.MuxOptions{
			OnEvict:  func(*core.MuxSession, string) { evicted.Add(1) },
			OnNotify: func(*core.MuxSession, string, uint32) { notifies.Add(1) },
		})
		if err != nil {
			return err
		}
		defer mc.Close()
		mcs[i] = mc
	}
	openStart := time.Now()
	sessions := make([]*loadSession, cfg.Sessions)
	var refused atomic.Int64
	var openWG sync.WaitGroup
	setupWorkers := 64 * cfg.Conns
	if setupWorkers > 1024 {
		setupWorkers = 1024
	}
	idxCh := make(chan int, setupWorkers)
	for w := 0; w < setupWorkers; w++ {
		openWG.Add(1)
		go func() {
			defer openWG.Done()
			for i := range idxCh {
				mc := mcs[i%len(mcs)]
				prof := profiles[i%len(profiles)]
				ms, err := mc.NewSession(fmt.Sprintf("loadgen-%d", i), prof.Name)
				if err != nil {
					refused.Add(1)
					continue
				}
				ls := &loadSession{s: ms, seg: segNames[i%len(segNames)], segIdx: i % len(segNames)}
				if cfg.Subscribe > 0 && float64(i%1000) < cfg.Subscribe*1000 {
					if _, err := ms.Call(&protocol.Subscribe{Seg: ls.seg, Policy: coherence.Full()}); err != nil {
						fmt.Fprintf(os.Stderr, "loadgen: subscribe %s: %v\n", ls.seg, err)
					}
				}
				sessions[i] = ls
			}
		}()
	}
	for i := range sessions {
		idxCh <- i
	}
	close(idxCh)
	openWG.Wait()
	held := sessions[:0:0]
	for _, ls := range sessions {
		if ls != nil {
			held = append(held, ls)
		}
	}
	fmt.Printf("opened %d/%d sessions over %d conns in %v (%d refused)\n",
		len(held), cfg.Sessions, cfg.Conns, time.Since(openStart).Round(time.Millisecond), refused.Load())
	if len(held) == 0 {
		return fmt.Errorf("no sessions opened")
	}

	// Open-loop measurement: schedule ops at the target rate and
	// measure from intended start.
	reg := obs.NewRegistry()
	hist := reg.Histogram("loadgen_readlock_seconds",
		"ReadLock round-trip latency measured from intended (open-loop) start.",
		obs.DurationBuckets)
	staleHist := reg.Histogram("loadgen_read_staleness_versions",
		"Observed read staleness: versions behind the writers' newest commit.",
		versionBuckets)
	var issued, done, opErrs, fresh, diffs, writes atomic.Int64
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ops := make(chan time.Time, 8192)
	measureStart := time.Now()
	if inproc != nil {
		inproc.SampleSLO(measureStart) // baseline: SLO windows cover the measurement only
	}
	go func() {
		defer close(ops)
		deadline := measureStart.Add(cfg.Duration)
		next := measureStart
		for next.Before(deadline) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			ops <- next
			issued.Add(1)
			next = next.Add(interval)
		}
	}()
	var opWG sync.WaitGroup
	var rr atomic.Uint64
	readPerMille := int64(cfg.ReadRatio * 1000)
	for w := 0; w < cfg.OpWorkers; w++ {
		opWG.Add(1)
		go func() {
			defer opWG.Done()
			for intended := range ops {
				seq := rr.Add(1)
				ls := held[seq%uint64(len(held))]
				if int64(seq%1000) >= readPerMille {
					// Write-path op: grab and release the write lock with
					// no diff. Versions don't move, but the lock grant —
					// and, through a proxy, the forward — is real.
					if _, err := ls.s.Call(&protocol.WriteLock{Seg: ls.seg}); err != nil {
						opErrs.Add(1)
						continue
					}
					if _, err := ls.s.Call(&protocol.WriteUnlock{Seg: ls.seg}); err != nil {
						opErrs.Add(1)
						continue
					}
					writes.Add(1)
					done.Add(1)
					continue
				}
				have := ls.have.Load()
				reply, err := ls.s.Call(&protocol.ReadLock{Seg: ls.seg, HaveVersion: have})
				hist.ObserveSince(intended)
				if err != nil {
					opErrs.Add(1)
					continue
				}
				if lr, ok := reply.(*protocol.LockReply); ok {
					if lr.Fresh {
						fresh.Add(1)
					} else if lr.Diff != nil {
						diffs.Add(1)
						ls.have.Store(lr.Diff.Version)
					}
					// Staleness: the answered version vs the newest the
					// writer pool had committed. Writers race reads, so
					// clamp the occasional negative to zero.
					if want := committed[ls.segIdx].Load(); want > ls.have.Load() {
						staleHist.Observe(float64(want - ls.have.Load()))
					} else {
						staleHist.Observe(0)
					}
				}
				_, _ = ls.s.Call(&protocol.ReadUnlock{Seg: ls.seg})
				done.Add(1)
			}
		}()
	}
	opWG.Wait()
	elapsed := time.Since(measureStart)
	close(stopWriters)
	writerWG.Wait()
	if inproc != nil {
		inproc.SampleSLO(time.Now())
	}

	// Report.
	var rep report
	rep.Schema = "interweave-loadgen/1"
	rep.When = time.Now().UTC().Format(time.RFC3339)
	rep.Go = runtime.Version()
	rep.NumCPU = runtime.NumCPU()
	rep.Config = cfg
	rep.Sessions.Target = cfg.Sessions
	rep.Sessions.Open = len(held)
	rep.Sessions.Refused = refused.Load()
	rep.Sessions.Evicted = evicted.Load()
	rep.Ops.Issued = issued.Load()
	rep.Ops.Done = done.Load()
	rep.Ops.Errors = opErrs.Load() + writeErrs.Load()
	rep.Ops.Rate = float64(done.Load()) / elapsed.Seconds()
	rep.Ops.Fresh = fresh.Load()
	rep.Ops.Diffs = diffs.Load()
	rep.Ops.Writes = writes.Load()
	rep.Ops.Notifies = notifies.Load()
	rep.ReadLock = summarize(hist.Snapshot())
	rep.Staleness = summarize(staleHist.Snapshot())
	if inproc != nil {
		h := inproc.Health(time.Now())
		rep.Health = &h
	} else if cfg.Health != "" {
		h, err := fetchHealth(cfg.Health)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: health fetch: %v\n", err)
		} else {
			rep.Health = h
		}
	}

	fmt.Printf("held %d sessions; %d ops in %v (%.0f/s, target %.0f/s); fresh=%d diffs=%d errors=%d\n",
		len(held), done.Load(), elapsed.Round(time.Millisecond), rep.Ops.Rate, cfg.Rate,
		fresh.Load(), diffs.Load(), rep.Ops.Errors)
	fmt.Printf("ReadLock latency (open-loop): mean=%s p50=%s p90=%s p99=%s p99.9=%s\n",
		secs(rep.ReadLock.Mean), secs(rep.ReadLock.P50), secs(rep.ReadLock.P90),
		secs(rep.ReadLock.P99), secs(rep.ReadLock.P999))
	if rep.Staleness.Count > 0 {
		fmt.Printf("read staleness (versions behind writers): mean=%.2f p50=%.0f p90=%.0f p99=%.0f\n",
			rep.Staleness.Mean, rep.Staleness.P50, rep.Staleness.P90, rep.Staleness.P99)
	}
	if rep.Health != nil {
		line := "server health: " + rep.Health.Status
		if len(rep.Health.Reasons) > 0 {
			line += " (" + strings.Join(rep.Health.Reasons, "; ") + ")"
		}
		fmt.Println(line)
	}

	if cfg.JSONOut != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.JSONOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONOut)
	}
	if len(held) < cfg.Sessions || evicted.Load() > 0 {
		return fmt.Errorf("held %d/%d sessions (%d refused, %d evicted)",
			len(held), cfg.Sessions, refused.Load(), evicted.Load())
	}
	if cfg.SLOGate {
		if rep.Health == nil {
			return fmt.Errorf("slo gate: no health verdict (in-process server or -health required)")
		}
		if rep.Health.Status != server.HealthOK {
			return fmt.Errorf("slo gate: server %s: %s",
				rep.Health.Status, strings.Join(rep.Health.Reasons, "; "))
		}
	}
	return nil
}

// fetchHealth pulls an external server's /healthz verdict. The
// endpoint answers 503 when overloaded, so any decodable body counts.
func fetchHealth(url string) (*server.Health, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &h, nil
}

func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// arrayUnits is the int32 array length each hot segment holds.
const arrayUnits = 64

// versionBuckets is the staleness ladder, in whole versions.
var versionBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

var arrayT = func() *types.Type {
	t, err := types.ArrayOf(types.Int32(), arrayUnits)
	if err != nil {
		panic(err)
	}
	return t
}()

// seedSegment creates a segment holding one named int32 array.
func seedSegment(c *core.Client, name string) error {
	h, err := c.Open(name)
	if err != nil {
		return err
	}
	if err := c.WLock(h); err != nil {
		return err
	}
	if _, err := c.Alloc(h, arrayT, 1, "data"); err != nil {
		_ = c.WUnlock(h)
		return err
	}
	return c.WUnlock(h)
}

// runWriter churns its share of the segments: write-lock, bump one
// int, release — at the configured interval, until stopped.
func runWriter(w int, wc *core.Client, cfg config, segNames []string, committed []atomic.Uint32, stop <-chan struct{}, errs *atomic.Int64) {
	rng := rand.New(rand.NewSource(int64(w) + 1))
	handles := make([]*core.Segment, len(segNames))
	addrs := make([]mem.Addr, len(segNames))
	ticker := time.NewTicker(cfg.WriteEvery)
	defer ticker.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		si := (w + i) % len(segNames)
		if handles[si] == nil {
			h, err := wc.Open(segNames[si])
			if err != nil {
				errs.Add(1)
				continue
			}
			handles[si] = h
		}
		h := handles[si]
		if err := wc.WLock(h); err != nil {
			errs.Add(1)
			continue
		}
		if addrs[si] == 0 {
			// Resolve the seeded array's address once, under the lock
			// (the MIP resolves only against a fresh copy).
			a, err := wc.MIPToPtr(segNames[si] + "#data")
			if err != nil {
				errs.Add(1)
				_ = wc.WUnlock(h)
				continue
			}
			addrs[si] = a
		}
		if err := wc.Heap().WriteI32(addrs[si], rng.Int31()); err != nil {
			errs.Add(1)
		}
		if err := wc.WUnlock(h); err != nil {
			errs.Add(1)
			continue
		}
		storeMax(&committed[si], h.Version())
	}
}
