// Command benchjson runs the repository's benchmarks — the paper
// figure reproductions in the root bench_test.go plus the package
// benchmarks under internal/ — and writes the results as a single
// schema-stable JSON document, so successive runs committed as
// BENCH_<UTC-date>.json files form a machine-readable performance
// trajectory that future changes can be compared against.
//
// Usage:
//
//	go run ./tools/benchjson                 # full run, BENCH_<date>.json
//	go run ./tools/benchjson -smoke          # one iteration per benchmark
//	go run ./tools/benchjson -out results.json -pattern 'Fig[45]'
//
// The tool shells out to `go test -run ^$ -bench <pattern> -benchmem`
// per package and parses the standard benchmark output, including
// custom b.ReportMetric units, into the "benchmarks" array. The
// document's "schema" field names the format; additions stay
// backward-compatible within a major schema version.
//
// With -compare <baseline.json> the run additionally checks the fresh
// results against a committed snapshot: every benchmark matched by
// -compare-pattern whose ns/op worsened — or whose MB/s throughput
// dropped — by more than -compare-threshold (a fraction, default
// 0.20) is a regression and the tool exits non-zero. Benchmarks present on only one side are
// reported as warnings, never failures, so adding or renaming a
// benchmark does not require regenerating the baseline first.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// schemaName identifies the output format; bump the suffix only for
// incompatible changes.
const schemaName = "interweave-bench/1"

// benchPackages are the packages benchjson runs, relative to the repo
// root: the paper figure reproductions plus the hot-path
// microbenchmarks.
var benchPackages = []string{".", "./internal/core", "./internal/rbtree", "./internal/journal", "./internal/server"}

// result is one parsed benchmark line.
type result struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// document is the top-level JSON structure.
type document struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	Mode       string   `json:"mode"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default BENCH_<UTC-date>.json)")
	pattern := fs.String("pattern", ".", "benchmark regexp passed to -bench")
	smoke := fs.Bool("smoke", false, "run each benchmark once (-benchtime 1x) for a fast schema check")
	benchtime := fs.String("benchtime", "", "override -benchtime (e.g. 100ms, 10x)")
	compare := fs.String("compare", "", "baseline BENCH_*.json to check for ns/op regressions")
	comparePattern := fs.String("compare-pattern", ".", "regexp selecting benchmark names to compare")
	compareThreshold := fs.Float64("compare-threshold", 0.20, "allowed fractional ns/op slowdown or MB/s drop before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode := "full"
	bt := *benchtime
	if *smoke {
		mode = "smoke"
		if bt == "" {
			bt = "1x"
		}
	}
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}

	doc := document{
		Schema:     schemaName,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Mode:       mode,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchmarks: []result{},
	}
	for _, pkg := range benchPackages {
		res, err := runPackage(pkg, *pattern, bt)
		if err != nil {
			return fmt.Errorf("package %s: %w", pkg, err)
		}
		doc.Benchmarks = append(doc.Benchmarks, res...)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		a, b := doc.Benchmarks[i], doc.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %d benchmarks -> %s (%s mode)\n", len(doc.Benchmarks), path, mode)
	if *compare != "" {
		return compareBaseline(doc, *compare, *comparePattern, *compareThreshold)
	}
	return nil
}

// compareBaseline checks the fresh document's ns/op and MB/s figures
// against a committed baseline snapshot and returns an error if any
// selected benchmark slowed down — or lost throughput — by more than
// the threshold fraction. Entries missing from either side only warn:
// a new benchmark has no history, and a retired one has no current
// figure.
func compareBaseline(doc document, baselinePath, pattern string, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base document
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if !strings.HasPrefix(base.Schema, "interweave-bench/") {
		return fmt.Errorf("baseline %s has schema %q, want interweave-bench/*", baselinePath, base.Schema)
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("compare-pattern: %w", err)
	}
	key := func(r result) string { return r.Package + " " + r.Name }
	baseline := make(map[string]result)
	for _, r := range base.Benchmarks {
		if re.MatchString(r.Name) {
			baseline[key(r)] = r
		}
	}
	var regressions []string
	compared := 0
	for _, r := range doc.Benchmarks {
		if !re.MatchString(r.Name) {
			continue
		}
		b, ok := baseline[key(r)]
		if !ok {
			fmt.Printf("benchjson: compare: %s has no baseline entry in %s (skipped)\n", key(r), baselinePath)
			continue
		}
		delete(baseline, key(r))
		matched := false
		if b.NsPerOp > 0 && r.NsPerOp > 0 {
			matched = true
			slowdown := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
			fmt.Printf("benchjson: compare: %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				key(r), b.NsPerOp, r.NsPerOp, 100*slowdown)
			if slowdown > threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.1f%% > %.0f%% threshold)",
						key(r), b.NsPerOp, r.NsPerOp, 100*slowdown, 100*threshold))
			}
		}
		if b.MBPerSec > 0 && r.MBPerSec > 0 {
			matched = true
			drop := (b.MBPerSec - r.MBPerSec) / b.MBPerSec
			fmt.Printf("benchjson: compare: %-50s %12.2f -> %12.2f MB/s  (%+.1f%%)\n",
				key(r), b.MBPerSec, r.MBPerSec, -100*drop)
			if drop > threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f -> %.2f MB/s (-%.1f%% > %.0f%% threshold)",
						key(r), b.MBPerSec, r.MBPerSec, 100*drop, 100*threshold))
			}
		}
		if matched {
			compared++
		}
	}
	for k := range baseline {
		fmt.Printf("benchjson: compare: baseline entry %s missing from this run (skipped)\n", k)
	}
	if compared == 0 {
		return fmt.Errorf("compare: no benchmark matched %q on both sides", pattern)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("compare: %d regression(s) vs %s:\n  %s",
			len(regressions), baselinePath, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchjson: compare: %d benchmark(s) within %.0f%% of %s\n", compared, 100*threshold, baselinePath)
	return nil
}

// runPackage runs one package's benchmarks and parses the output.
func runPackage(pkg, pattern, benchtime string) ([]result, error) {
	cmdArgs := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", benchtime)
	}
	cmdArgs = append(cmdArgs, pkg)
	cmd := exec.Command("go", cmdArgs...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w\n%s%s", err, outBuf.String(), errBuf.String())
	}
	return parseBench(pkg, outBuf.Bytes())
}

// parseBench extracts benchmark results from `go test -bench` output.
// A benchmark line is
//
//	BenchmarkName-8   100   12345 ns/op   67 B/op   8 allocs/op   9.1 custom-unit
//
// — name, iteration count, then value/unit pairs. ns/op, B/op, and
// allocs/op land in dedicated fields; everything else (custom
// b.ReportMetric units) goes into the metrics map.
func parseBench(pkg string, out []byte) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: some message"
		}
		name, procs := splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
		r := result{Package: pkg, Name: name, Procs: procs, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerSec = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// splitProcs separates the trailing GOMAXPROCS suffix from a
// benchmark name ("Fig4/size=1KB-8" -> "Fig4/size=1KB", 8). A name
// without a numeric suffix reports procs 1, matching go test.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n <= 0 {
		return s, 1
	}
	return s[:i], n
}
