// Command proxysmoke asserts the proxy tier's flagship property —
// fan-out independence (DESIGN.md §11, CAPACITY.md) — against a live
// origin + proxy-tree topology, after a loadgen run through the leaf
// proxy. It is the check behind `make proxy-smoke`.
//
// Default mode reads the loadgen JSON report and scrapes the origin's
// and the leaf proxy's /metrics, then requires:
//
//   - the run was clean: every session opened, zero op errors, and
//     the observed read staleness p99 within -max-staleness;
//   - reader independence: the origin holds at most -max-origin-sessions
//     ordinary sessions (the writers and the seeder — not the reader
//     population, which lives at the leaf) while the leaf opened at
//     least -min-leaf-sessions downstream sessions and at least one
//     proxy session is registered at the origin;
//   - fan-out amplification happened at the edge: the leaf's
//     iw_proxy_downstream_notifies_total is at least the origin's
//     iw_server_notifications_total, which itself tracks the proxy
//     subscriptions, not the reader count.
//
// With -wait-status the tool instead polls the leaf's /healthz until
// its verdict matches (e.g. "degraded" after the leaf's upstream is
// killed, "ok" once it recovers), which is how the smoke's chaos step
// observes graceful degradation and recovery.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	report := flag.String("report", "", "loadgen JSON report to validate")
	origin := flag.String("origin", "", "origin server metrics address (host:port)")
	leaf := flag.String("leaf", "", "leaf proxy metrics address (host:port)")
	maxStaleness := flag.Float64("max-staleness", 64, "maximum allowed read-staleness p99, in versions")
	minLeafSessions := flag.Float64("min-leaf-sessions", 1000, "minimum downstream sessions the leaf proxy must have opened")
	maxOriginSessions := flag.Float64("max-origin-sessions", 100, "maximum ordinary sessions the origin may hold")
	waitStatus := flag.String("wait-status", "", "poll the leaf /healthz until its status equals this value, then exit")
	timeout := flag.Duration("timeout", 15*time.Second, "overall deadline for -wait-status polling")
	flag.Parse()

	if err := run(*report, *origin, *leaf, *maxStaleness, *minLeafSessions, *maxOriginSessions, *waitStatus, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "proxysmoke:", err)
		os.Exit(1)
	}
}

func run(report, origin, leaf string, maxStaleness, minLeafSessions, maxOriginSessions float64, waitStatus string, timeout time.Duration) error {
	if waitStatus != "" {
		return waitForStatus(leaf, waitStatus, timeout)
	}
	if err := checkReport(report, maxStaleness); err != nil {
		return err
	}
	om, err := scrape(origin)
	if err != nil {
		return fmt.Errorf("scraping origin %s: %w", origin, err)
	}
	lm, err := scrape(leaf)
	if err != nil {
		return fmt.Errorf("scraping leaf %s: %w", leaf, err)
	}

	originNotifies := om["iw_server_notifications_total"]
	originSessions := om["iw_server_sessions"]
	proxySessions := om["iw_server_proxy_sessions"]
	leafSessions := lm["iw_proxy_sessions_opened_total"]
	leafReads := lm["iw_proxy_reads_total"]
	leafDownstream := lm["iw_proxy_downstream_notifies_total"]

	fmt.Printf("proxysmoke: origin sessions=%.0f proxy_sessions=%.0f notifications=%.0f\n",
		originSessions, proxySessions, originNotifies)
	fmt.Printf("proxysmoke: leaf sessions_opened=%.0f reads=%.0f downstream_notifies=%.0f\n",
		leafSessions, leafReads, leafDownstream)

	if proxySessions < 1 {
		return fmt.Errorf("origin reports %.0f proxy sessions, want >= 1 (did the tree connect?)", proxySessions)
	}
	if leafSessions < minLeafSessions {
		return fmt.Errorf("leaf opened %.0f downstream sessions, want >= %.0f", leafSessions, minLeafSessions)
	}
	if originSessions > maxOriginSessions {
		return fmt.Errorf("origin holds %.0f ordinary sessions, want <= %.0f — the reader population leaked past the proxies",
			originSessions, maxOriginSessions)
	}
	if leafReads <= 0 {
		return fmt.Errorf("leaf served no reads")
	}
	if originNotifies <= 0 {
		return fmt.Errorf("origin pushed no notifications — the proxies never subscribed")
	}
	if leafDownstream < originNotifies {
		return fmt.Errorf("leaf fanned out %.0f notifications vs %.0f at the origin — amplification should happen at the edge, not the origin",
			leafDownstream, originNotifies)
	}
	fmt.Printf("proxysmoke: ok — %.0f readers fanned out at the edge, origin notify cost tracked its proxy subscriptions\n", leafSessions)
	return nil
}

// checkReport validates the loadgen run: clean open, zero errors,
// bounded observed staleness.
func checkReport(path string, maxStaleness float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Schema   string `json:"schema"`
		Sessions struct {
			Target  int   `json:"target"`
			Open    int   `json:"open"`
			Refused int64 `json:"refused"`
		} `json:"sessions"`
		Ops struct {
			Done   int64 `json:"done"`
			Errors int64 `json:"errors"`
		} `json:"ops"`
		Staleness struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99"`
		} `json:"read_staleness_versions"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "interweave-loadgen/") {
		return fmt.Errorf("%s has schema %q, want interweave-loadgen/*", path, rep.Schema)
	}
	if rep.Sessions.Open != rep.Sessions.Target || rep.Sessions.Refused != 0 {
		return fmt.Errorf("sessions: opened %d/%d, %d refused", rep.Sessions.Open, rep.Sessions.Target, rep.Sessions.Refused)
	}
	if rep.Ops.Errors != 0 {
		return fmt.Errorf("%d op errors (of %d ops)", rep.Ops.Errors, rep.Ops.Done)
	}
	if rep.Ops.Done == 0 {
		return fmt.Errorf("no operations completed")
	}
	if rep.Staleness.Count == 0 {
		return fmt.Errorf("no read-staleness samples recorded — were the reads routed through the proxy?")
	}
	if rep.Staleness.P99 > maxStaleness {
		return fmt.Errorf("read staleness p99 %.0f versions exceeds bound %.0f", rep.Staleness.P99, maxStaleness)
	}
	fmt.Printf("proxysmoke: loadgen clean — %d ops, 0 errors, staleness p99 %.0f versions (bound %.0f)\n",
		rep.Ops.Done, rep.Staleness.P99, maxStaleness)
	return nil
}

// waitForStatus polls the leaf's /healthz until its verdict equals
// want or the deadline passes.
func waitForStatus(leaf, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last := "(unreachable)"
	for {
		var h struct {
			Status string `json:"status"`
		}
		resp, err := http.Get("http://" + leaf + "/healthz")
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if rerr == nil && json.Unmarshal(body, &h) == nil {
				last = h.Status
				if h.Status == want {
					fmt.Printf("proxysmoke: leaf %s reached status %q\n", leaf, want)
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leaf %s never reached status %q within %s (last: %s)", leaf, want, timeout, last)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// scrape fetches a /metrics endpoint and parses the unlabelled
// Prometheus text samples into a name -> value map; labelled series
// (histogram buckets, per-segment gauges) are skipped — the smoke
// only reads scalar counters and gauges.
func scrape(addr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 8<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.ContainsRune(fields[0], '{') {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}
